#ifndef TRMMA_SERVE_BREAKER_H_
#define TRMMA_SERVE_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace trmma {
namespace serve {

/// Trip/recovery policy of one per-request-class circuit breaker.
struct BreakerConfig {
  int window = 32;            ///< recent results considered (ring)
  int min_samples = 10;       ///< no trip decision before this many results
  double trip_ratio = 0.5;    ///< failure fraction that opens the breaker
  double cooldown_ms = 250.0; ///< open -> half-open delay
  int half_open_probes = 2;   ///< consecutive probe successes to close
};

enum class BreakerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

/// Stable lowercase label ("closed", "half_open", "open").
const char* BreakerStateName(BreakerState state);

/// Circuit breaker over a sliding window of request results. Sustained
/// failure/timeout rates open the circuit: requests are rejected with a
/// retry-after hint until the cooldown passes, then a limited number of
/// half-open probes test the downstream; probe successes close the circuit,
/// any probe failure re-opens it (DESIGN.md §11).
///
/// Time is an explicit parameter of every transition-relevant call so tests
/// drive the cooldown deterministically without sleeping. Thread-safe; the
/// state gauge serve.breaker.state{class} mirrors transitions when metrics
/// are enabled.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  CircuitBreaker(std::string request_class, const BreakerConfig& config);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Admission check. Closed: always true. Open: false until the cooldown
  /// elapses (remaining wait in *retry_after_ms when non-null), then the
  /// breaker moves to half-open. Half-open: true for up to
  /// `half_open_probes` outstanding probes, false (with a cooldown-sized
  /// retry-after) beyond that.
  bool Admit(Clock::time_point now, double* retry_after_ms = nullptr);

  /// Result feedback for an admitted request. A failure is a non-OK
  /// terminal status or a deadline timeout; sheds are not recorded (they
  /// never reached the downstream).
  void RecordSuccess(Clock::time_point now);
  void RecordFailure(Clock::time_point now);

  BreakerState state() const;
  const std::string& request_class() const { return class_; }

 private:
  void TransitionLocked(BreakerState next);
  double FailureRatioLocked() const;

  const std::string class_;
  const BreakerConfig config_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<bool> window_;  ///< ring of results, true = failure
  int window_pos_ = 0;
  int window_count_ = 0;
  Clock::time_point opened_at_{};
  int probes_admitted_ = 0;
  int probe_successes_ = 0;
};

}  // namespace serve
}  // namespace trmma

#endif  // TRMMA_SERVE_BREAKER_H_
