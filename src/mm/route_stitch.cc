#include "mm/route_stitch.h"

#include "common/deadline.h"
#include "graph/route.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace trmma {

std::vector<RouteSection> StitchRouteSections(
    const RoadNetwork& network, DaRoutePlanner& planner,
    ShortestPathEngine& fallback,
    const std::vector<SegmentId>& point_segments) {
  std::vector<RouteSection> sections;
  const int n = static_cast<int>(point_segments.size());
  auto valid = [&](SegmentId sid) {
    return sid >= 0 && sid < network.num_segments();
  };

  RouteSection cur;
  bool open = false;
  bool expired = false;
  int64_t disconnected = 0;
  for (int i = 0; i < n; ++i) {
    const SegmentId sid = point_segments[i];
    if (!valid(sid)) {
      // Unmatched point: attach it to the current section (its anchor is
      // the caller's problem); before the first section it is unusable.
      if (open) cur.last_point = i;
      continue;
    }
    if (!open) {
      cur = RouteSection{{sid}, i, i};
      open = true;
      continue;
    }
    const SegmentId prev = cur.route.back();
    if (prev == sid) {
      cur.last_point = i;
      continue;
    }
    // Deadline checkpoint: each unequal pair costs up to two path searches.
    // Once expired, split instead of planning — later sections hold the
    // matched segments without connecting routes. Counted separately from
    // mm.stitch.disconnected (a deliberate split is not a graph defect and
    // must not trip the no_disconnected_stitches SLO).
    if (!expired && DeadlineExpired()) {
      expired = true;
      NoteDeadlineDegradation();
      if (obs::MetricsEnabled()) {
        obs::MetricRegistry::Global()
            .GetCounter("mm.stitch.deadline_degraded")
            ->Increment();
      }
      obs::RecordEvent("stitch:deadline_degraded@" + std::to_string(i));
    }
    if (expired) {
      sections.push_back(std::move(cur));
      cur = RouteSection{{sid}, i, i};
      continue;
    }
    PathResult link = planner.Plan(prev, sid);
    if (!link.found) {
      link = fallback.SegmentToSegment(prev, sid, 2.0e4);
    }
    if (link.found) {
      AppendRoute(cur.route, link.segments);
      cur.last_point = i;
    } else {
      // Unroutable pair: close the section and restart from this point.
      ++disconnected;
      obs::RecordEvent("stitch:unroutable " + std::to_string(prev) + "->" +
                       std::to_string(sid) + "@" + std::to_string(i));
      sections.push_back(std::move(cur));
      cur = RouteSection{{sid}, i, i};
    }
  }
  if (open) sections.push_back(std::move(cur));

  if (disconnected > 0 && obs::MetricsEnabled()) {
    static obs::Counter* const counter =
        obs::MetricRegistry::Global().GetCounter("mm.stitch.disconnected");
    counter->Increment(disconnected);
  }
  if (obs::RequestRecord* rec = obs::ActiveRecord();
      rec != nullptr && rec->route_sections == 0) {
    rec->route_sections = static_cast<std::int64_t>(sections.size());
  }
  return sections;
}

Route StitchRoute(const RoadNetwork& network, DaRoutePlanner& planner,
                  ShortestPathEngine& fallback,
                  const std::vector<SegmentId>& point_segments) {
  Route route;
  for (RouteSection& section :
       StitchRouteSections(network, planner, fallback, point_segments)) {
    route.insert(route.end(), section.route.begin(), section.route.end());
  }
  return route;
}

}  // namespace trmma
