#include "mm/route_stitch.h"

#include "graph/route.h"

namespace trmma {

Route StitchRoute(const RoadNetwork& network, DaRoutePlanner& planner,
                  ShortestPathEngine& fallback,
                  const std::vector<SegmentId>& point_segments) {
  Route route;
  const std::vector<SegmentId> segs =
      DeduplicateConsecutive(point_segments);
  for (SegmentId sid : segs) {
    if (route.empty()) {
      route.push_back(sid);
      continue;
    }
    const SegmentId prev = route.back();
    if (prev == sid) continue;
    PathResult link = planner.Plan(prev, sid);
    if (!link.found) {
      link = fallback.SegmentToSegment(prev, sid, 2.0e4);
    }
    if (link.found) {
      AppendRoute(route, link.segments);
    } else {
      route.push_back(sid);  // disconnected pair: keep both, no connector
    }
  }
  return route;
}

}  // namespace trmma
