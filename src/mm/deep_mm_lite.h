#ifndef TRMMA_MM_DEEP_MM_LITE_H_
#define TRMMA_MM_DEEP_MM_LITE_H_

#include <memory>

#include "common/random.h"
#include "mm/grid_cells.h"
#include "mm/map_matcher.h"
#include "nn/adam.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "traj/dataset.h"

namespace trmma {

/// Hyperparameters of the DeepMM-style baseline.
struct DeepMmConfig {
  int hidden_dim = 32;
  double grid_cell_m = 200.0;  ///< DeepMM discretizes space into cells
  double lr = 1e-3;
  int batch_size = 16;
  uint64_t seed = 21;
};

/// Representative reimplementation of the deep seq2seq map-matching family
/// (DeepMM [32]): a GRU encoder over raw GPS features and, per point, a
/// multiclass prediction over ALL |E| road segments. This is exactly the
/// design choice the paper's MMA argues against — the output layer scales
/// with the network size, which shows up in its training/inference cost.
class DeepMmLiteMatcher : public MapMatcher, public nn::Module {
 public:
  DeepMmLiteMatcher(const RoadNetwork& network, const DeepMmConfig& config);

  /// One epoch of teacher-forced training; returns average per-point loss.
  double TrainEpoch(const Dataset& dataset, Rng& rng);

  std::vector<SegmentId> MatchPoints(const Trajectory& traj) override;
  std::string name() const override { return "DeepMM"; }

 private:
  nn::Tensor EncodeHidden(nn::Tape& tape, const Trajectory& traj);

  const RoadNetwork& network_;
  DeepMmConfig config_;
  GridIndexer grid_;
  Rng init_rng_;
  nn::Embedding cell_emb_;
  nn::Linear input_fc_;
  nn::GruCell gru_;
  nn::Linear output_fc_;  ///< hidden -> |E| logits: the expensive part
  std::unique_ptr<nn::Adam> optimizer_;
  int64_t epochs_trained_ = 0;  ///< epoch index reported in train telemetry
};

}  // namespace trmma

#endif  // TRMMA_MM_DEEP_MM_LITE_H_
