#include "mm/lhmm.h"

#include <cmath>

#include "common/logging.h"
#include "obs/trace.h"

namespace trmma {
namespace {

double SigmoidScalar(double x) {
  if (x >= 0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

LhmmMatcher::LhmmMatcher(const RoadNetwork& network, const SegmentRTree& index,
                         const Ubodt& ubodt, const HmmConfig& config)
    : HmmMatcher(network, index, config), ubodt_(ubodt) {}

void LhmmMatcher::Featurize(const Candidate& candidate, double sigma,
                            double out[kNumFeatures]) {
  out[0] = 1.0;
  out[1] = candidate.distance / sigma;
  for (int i = 0; i < 4; ++i) out[2 + i] = candidate.cosine[i];
}

double LhmmMatcher::Train(const Dataset& dataset, int epochs, Rng& rng) {
  TRMMA_SPAN("lhmm.train");
  TRMMA_CHECK(dataset.network != nullptr);
  // Collect labeled candidate feature vectors from the training split.
  std::vector<std::array<double, kNumFeatures>> features;
  std::vector<double> labels;
  for (int idx : dataset.train_idx) {
    const TrajectorySample& sample = dataset.samples[idx];
    const auto cands = ComputeCandidates(network_, index_, sample.sparse,
                                         config_.k_candidates);
    for (size_t i = 0; i < cands.size(); ++i) {
      const SegmentId truth =
          sample.truth[sample.sparse_indices[i]].segment;
      for (const Candidate& c : cands[i]) {
        std::array<double, kNumFeatures> f;
        Featurize(c, config_.sigma_m, f.data());
        features.push_back(f);
        labels.push_back(c.segment == truth ? 1.0 : 0.0);
      }
    }
  }
  if (features.empty()) return 0.0;

  // Plain SGD logistic regression.
  std::vector<int> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  double avg_loss = 0.0;
  const double lr = 0.05;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    double total = 0.0;
    for (int i : order) {
      const auto& f = features[i];
      double z = 0.0;
      for (int k = 0; k < kNumFeatures; ++k) z += weights_[k] * f[k];
      const double p = SigmoidScalar(z);
      const double y = labels[i];
      total += -(y * std::log(std::max(p, 1e-12)) +
                 (1 - y) * std::log(std::max(1 - p, 1e-12)));
      const double err = p - y;
      for (int k = 0; k < kNumFeatures; ++k) weights_[k] -= lr * err * f[k];
    }
    avg_loss = total / features.size();
  }
  trained_ = true;
  return avg_loss;
}

double LhmmMatcher::RouteDistance(SegmentId e1, double r1, SegmentId e2,
                                  double r2) {
  const RoadSegment& s1 = network_.segment(e1);
  const RoadSegment& s2 = network_.segment(e2);
  if (e1 == e2 && r2 >= r1) return (r2 - r1) * s1.length_m;
  const double gap = ubodt_.Distance(s1.to, s2.from);
  if (std::isinf(gap)) return gap;
  return (1.0 - r1) * s1.length_m + gap + r2 * s2.length_m;
}

double LhmmMatcher::EmissionLogProb(const Candidate& candidate) const {
  double f[kNumFeatures];
  Featurize(candidate, config_.sigma_m, f);
  double z = 0.0;
  for (int k = 0; k < kNumFeatures; ++k) z += weights_[k] * f[k];
  // log sigmoid(z), numerically stable.
  return z >= 0 ? -std::log1p(std::exp(-z)) : z - std::log1p(std::exp(z));
}

}  // namespace trmma
