#ifndef TRMMA_MM_HMM_H_
#define TRMMA_MM_HMM_H_

#include <memory>

#include "graph/shortest_path.h"
#include "graph/spatial_index.h"
#include "graph/ubodt.h"
#include "mm/candidates.h"
#include "mm/map_matcher.h"

namespace trmma {

/// Parameters of the Newson-Krumm HMM matcher [17].
struct HmmConfig {
  int k_candidates = 10;
  double sigma_m = 12.0;          ///< GPS noise scale of the emission model
  double beta_m = 40.0;           ///< transition tolerance scale
  double max_route_dist_m = 8000.0;  ///< cap on candidate-pair route search
};

/// Classic HMM map matching (Newson & Krumm 2009): Gaussian emission on
/// perpendicular distance, exponential transition on the difference
/// between route distance and straight-line distance, decoded with
/// Viterbi. Route distances come from on-the-fly Dijkstra, which is the
/// method's well-known bottleneck (FMM fixes it with the UBODT).
class HmmMatcher : public MapMatcher {
 public:
  HmmMatcher(const RoadNetwork& network, const SegmentRTree& index,
             const HmmConfig& config = {});

  std::vector<SegmentId> MatchPoints(const Trajectory& traj) override;
  std::string name() const override { return "HMM"; }

 protected:
  /// Route distance between candidate positions; subclasses override to
  /// plug in precomputation (FMM).
  virtual double RouteDistance(SegmentId e1, double r1, SegmentId e2,
                               double r2);

  /// Emission log-probability of a candidate; LHMM overrides with a
  /// learned model.
  virtual double EmissionLogProb(const Candidate& candidate) const;

  const RoadNetwork& network_;
  const SegmentRTree& index_;
  HmmConfig config_;
  std::unique_ptr<ShortestPathEngine> engine_;
};

/// FMM [28]: the same HMM accelerated with an Upper-Bounded OD Table.
class FmmMatcher : public HmmMatcher {
 public:
  /// `ubodt` must outlive the matcher (it is shared across methods).
  FmmMatcher(const RoadNetwork& network, const SegmentRTree& index,
             const Ubodt& ubodt, const HmmConfig& config = {});

  std::string name() const override { return "FMM"; }

 protected:
  double RouteDistance(SegmentId e1, double r1, SegmentId e2,
                       double r2) override;

 private:
  const Ubodt& ubodt_;
};

}  // namespace trmma

#endif  // TRMMA_MM_HMM_H_
