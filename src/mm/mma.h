#ifndef TRMMA_MM_MMA_H_
#define TRMMA_MM_MMA_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/spatial_index.h"
#include "mm/candidates.h"
#include "mm/map_matcher.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/transformer.h"
#include "traj/dataset.h"

namespace trmma {

/// Hyperparameters of MMA (paper §VI-A, scaled for CPU training; see
/// DESIGN.md §4). The two ablation switches implement TRMMA-C (no
/// candidate context in the point embedding) and TRMMA-DI (no directional
/// cosine features).
struct MmaConfig {
  int kc = 10;          ///< candidate set size (paper Fig. 2 analysis)
  int d0 = 32;          ///< segment embedding dim (Eq. 1)
  int d1 = 64;          ///< candidate MLP hidden dim (Eq. 2)
  int d2 = 32;          ///< candidate/point embedding dim
  int d3 = 64;          ///< attention MLP hidden dim (Eq. 7)
  int trans_layers = 2;
  int trans_heads = 2;
  int trans_ffn = 64;
  double lr = 1e-3;
  int batch_size = 16;  ///< trajectories per optimizer step
  uint64_t seed = 11;
  bool use_candidate_context = true;  ///< off = TRMMA-C ablation
  bool use_directional = true;        ///< off = TRMMA-DI ablation
};

/// MMA (paper §IV): maps each GPS point of a sparse trajectory to a road
/// segment by classification over its top-k_c candidate set, using a
/// transformer point encoder, Node2Vec-initialized candidate embeddings
/// with directional features, and attention fusion (Algorithm 1).
class MmaMatcher : public MapMatcher, public nn::Module {
 public:
  MmaMatcher(const RoadNetwork& network, const SegmentRTree& index,
             const MmaConfig& config);

  /// Initializes the candidate embedding table W^C from pre-trained
  /// Node2Vec vectors W_G (paper Eq. 1). Shape: num_segments x d0.
  void LoadPretrainedSegmentEmbeddings(const nn::Matrix& table);

  /// Runs one training epoch (binary cross entropy, Eq. 10) over the
  /// dataset's training split; returns the average per-point loss.
  double TrainEpoch(const Dataset& dataset, Rng& rng);

  std::vector<SegmentId> MatchPoints(const Trajectory& traj) override;

  /// MatchPoints plus per-point probabilities P(c|p_i) of the chosen
  /// candidates (Eq. 9).
  std::vector<SegmentId> MatchPointsWithScores(const Trajectory& traj,
                                               std::vector<double>* scores);

  std::string name() const override { return "MMA"; }

  const MmaConfig& config() const { return config_; }

  /// Persists / restores all trainable parameters. The loading matcher
  /// must be constructed with the same config and network.
  Status Save(const std::string& path);
  Status Load(const std::string& path);

 private:
  /// Builds the graph for one trajectory; returns per-point candidate
  /// logits (each kc_i x 1). `candidates` must come from ComputeCandidates.
  std::vector<nn::Tensor> ForwardLogits(
      nn::Tape& tape, const Trajectory& traj,
      const std::vector<std::vector<Candidate>>& candidates);

  const RoadNetwork& network_;
  const SegmentRTree& index_;
  MmaConfig config_;
  Rng init_rng_;

  nn::Embedding seg_emb_;       ///< W^C (Eq. 1)
  nn::Mlp cand_mlp_;            ///< Eq. 2
  nn::Linear point_fc_;         ///< z0 -> z1
  nn::TransformerEncoder point_trans_;  ///< Eq. 3
  nn::Mlp attn_mlp_;            ///< Eq. 7
  std::unique_ptr<nn::Adam> optimizer_;
  int64_t epochs_trained_ = 0;  ///< epoch index reported in train telemetry
};

}  // namespace trmma

#endif  // TRMMA_MM_MMA_H_
