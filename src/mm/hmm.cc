#include "mm/hmm.h"

#include <algorithm>
#include <cmath>

#include "common/deadline.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace trmma {
namespace {

constexpr double kLogZero = -1e18;

}  // namespace

HmmMatcher::HmmMatcher(const RoadNetwork& network, const SegmentRTree& index,
                       const HmmConfig& config)
    : network_(network), index_(index), config_(config),
      engine_(std::make_unique<ShortestPathEngine>(network)) {}

double HmmMatcher::RouteDistance(SegmentId e1, double r1, SegmentId e2,
                                 double r2) {
  return engine_->PointToPointDistance(e1, r1, e2, r2,
                                       config_.max_route_dist_m);
}

double HmmMatcher::EmissionLogProb(const Candidate& candidate) const {
  const double z = candidate.distance / config_.sigma_m;
  return -0.5 * z * z;
}

std::vector<SegmentId> HmmMatcher::MatchPoints(const Trajectory& traj) {
  TRMMA_SPAN("hmm.viterbi");
  const int n = traj.size();
  std::vector<SegmentId> result(n, kInvalidSegment);
  if (n == 0) return result;
  int64_t transitions = 0;

  auto candidates = ComputeCandidates(network_, index_, traj,
                                      config_.k_candidates);
  // Degenerate-input guard: an empty candidate column (possible only on a
  // segmentless network or fully corrupt coordinates) would break the
  // lattice; borrow the nearest non-empty neighbor column, and give up on
  // the whole trajectory only when every column is empty.
  {
    int first_nonempty = -1;
    for (int i = 0; i < n; ++i) {
      if (!candidates[i].empty()) {
        first_nonempty = i;
        break;
      }
    }
    if (first_nonempty < 0) return result;  // all points unmatched
    for (int i = 0; i < n; ++i) {
      if (candidates[i].empty()) {
        const int src = i > 0 && !candidates[i - 1].empty() ? i - 1
                                                            : first_nonempty;
        candidates[i] = candidates[src];
      }
    }
  }
  std::vector<Vec2> xy(n);
  for (int i = 0; i < n; ++i) {
    xy[i] = network_.projection().ToMeters(traj.points[i].pos);
  }

  // Viterbi over the candidate lattice.
  std::vector<std::vector<double>> score(n);
  std::vector<std::vector<int>> back(n);
  score[0].resize(candidates[0].size());
  back[0].assign(candidates[0].size(), -1);
  for (size_t j = 0; j < candidates[0].size(); ++j) {
    score[0][j] = EmissionLogProb(candidates[0][j]);
  }

  bool expired = false;
  for (int i = 1; i < n; ++i) {
    const auto& prev = candidates[i - 1];
    const auto& cur = candidates[i];
    const double straight = (xy[i] - xy[i - 1]).Norm();
    score[i].assign(cur.size(), kLogZero);
    back[i].assign(cur.size(), -1);
    // Deadline checkpoint: transitions dominate Viterbi cost (each one may
    // run a shortest-path query). Once expired, score the remaining points
    // by emission alone with back=-1 — exactly the chain-restart shape the
    // backtrack already handles — so the decode degrades to nearest-segment
    // snapping instead of burning the worker.
    if (!expired && DeadlineExpired()) {
      expired = true;
      NoteDeadlineDegradation();
      if (obs::MetricsEnabled()) {
        obs::MetricRegistry::Global()
            .GetCounter("hmm.deadline_degraded")
            ->Increment();
      }
      obs::RecordEvent("hmm:deadline_degraded@" + std::to_string(i));
    }
    if (expired) {
      for (size_t j = 0; j < cur.size(); ++j) {
        score[i][j] = EmissionLogProb(cur[j]);
      }
      continue;
    }
    for (size_t j = 0; j < cur.size(); ++j) {
      const double emission = EmissionLogProb(cur[j]);
      for (size_t k = 0; k < prev.size(); ++k) {
        if (score[i - 1][k] <= kLogZero / 2) continue;
        ++transitions;
        const double route = RouteDistance(prev[k].segment, prev[k].ratio,
                                           cur[j].segment, cur[j].ratio);
        double transition;
        if (std::isinf(route)) {
          transition = -50.0;  // unreachable within budget: strongly penalize
        } else {
          transition = -std::abs(route - straight) / config_.beta_m;
        }
        const double s = score[i - 1][k] + transition + emission;
        if (s > score[i][j]) {
          score[i][j] = s;
          back[i][j] = static_cast<int>(k);
        }
      }
    }
    // Degenerate case: all transitions blocked; restart the chain here.
    bool any = false;
    for (double s : score[i]) any = any || s > kLogZero / 2;
    if (!any) {
      obs::RecordEvent("hmm:chain_restart@" + std::to_string(i));
      for (size_t j = 0; j < cur.size(); ++j) {
        score[i][j] = EmissionLogProb(cur[j]);
        back[i][j] = -1;
      }
    }
  }

  if (obs::MetricsEnabled()) {
    // One add for the whole lattice, not one per candidate pair.
    static obs::Counter* const evaluated =
        obs::MetricRegistry::Global().GetCounter("hmm.transitions");
    evaluated->Increment(transitions);
  }

  // Backtrack.
  obs::RequestRecord* rec = obs::ActiveRecord();
  const bool capture_scores = rec != nullptr && rec->scores.empty();
  if (capture_scores) rec->scores.assign(n, 0.0);
  int best = 0;
  for (size_t j = 1; j < score[n - 1].size(); ++j) {
    if (score[n - 1][j] > score[n - 1][best]) best = static_cast<int>(j);
  }
  for (int i = n - 1; i >= 0; --i) {
    result[i] = candidates[i][best].segment;
    // Per-point confidence: the emission log-prob of the chosen candidate.
    if (capture_scores) rec->scores[i] = EmissionLogProb(candidates[i][best]);
    if (i > 0) {
      const int b = back[i][best];
      best = b >= 0 ? b : 0;
      if (b < 0) {
        // Chain restarted at i: pick the best-scoring candidate at i-1.
        for (size_t j = 1; j < score[i - 1].size(); ++j) {
          if (score[i - 1][j] > score[i - 1][best]) {
            best = static_cast<int>(j);
          }
        }
      }
    }
  }
  return result;
}

FmmMatcher::FmmMatcher(const RoadNetwork& network, const SegmentRTree& index,
                       const Ubodt& ubodt, const HmmConfig& config)
    : HmmMatcher(network, index, config), ubodt_(ubodt) {}

double FmmMatcher::RouteDistance(SegmentId e1, double r1, SegmentId e2,
                                 double r2) {
  const RoadSegment& s1 = network_.segment(e1);
  const RoadSegment& s2 = network_.segment(e2);
  if (e1 == e2 && r2 >= r1) return (r2 - r1) * s1.length_m;
  const double gap = ubodt_.Distance(s1.to, s2.from);
  if (std::isinf(gap)) return gap;
  return (1.0 - r1) * s1.length_m + gap + r2 * s2.length_m;
}

}  // namespace trmma
