#include "mm/nearest.h"

#include "common/logging.h"

namespace trmma {

NearestMatcher::NearestMatcher(const RoadNetwork& network,
                               const SegmentRTree& index)
    : network_(network), index_(index) {}

std::vector<SegmentId> NearestMatcher::MatchPoints(const Trajectory& traj) {
  std::vector<SegmentId> out;
  out.reserve(traj.size());
  for (const GpsPoint& p : traj.points) {
    const Vec2 xy = network_.projection().ToMeters(p.pos);
    const auto hits = index_.KNearest(xy, 1);
    TRMMA_CHECK(!hits.empty());
    out.push_back(hits[0].segment);
  }
  return out;
}

}  // namespace trmma
