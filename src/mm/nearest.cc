#include "mm/nearest.h"

#include "common/logging.h"

namespace trmma {

NearestMatcher::NearestMatcher(const RoadNetwork& network,
                               const SegmentRTree& index)
    : network_(network), index_(index) {}

std::vector<SegmentId> NearestMatcher::MatchPoints(const Trajectory& traj) {
  std::vector<SegmentId> out;
  out.reserve(traj.size());
  for (const GpsPoint& p : traj.points) {
    const Vec2 xy = network_.projection().ToMeters(p.pos);
    const auto hits = index_.KNearest(xy, 1);
    // Empty only for a segmentless network or a non-finite coordinate;
    // report the point as unmatched rather than aborting the process.
    out.push_back(hits.empty() ? kInvalidSegment : hits[0].segment);
  }
  return out;
}

}  // namespace trmma
