#include "mm/nearest.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"

namespace trmma {

NearestMatcher::NearestMatcher(const RoadNetwork& network,
                               const SegmentRTree& index)
    : network_(network), index_(index) {}

std::vector<SegmentId> NearestMatcher::MatchPoints(const Trajectory& traj) {
  obs::RequestRecord* rec = obs::ActiveRecord();
  const bool capture = rec != nullptr && rec->scores.empty();
  const bool capture_cands = capture && rec->candidates.empty();
  std::vector<SegmentId> out;
  out.reserve(traj.size());
  for (const GpsPoint& p : traj.points) {
    const Vec2 xy = network_.projection().ToMeters(p.pos);
    const auto hits = index_.KNearest(xy, 1);
    // Empty only for a segmentless network or a non-finite coordinate;
    // report the point as unmatched rather than aborting the process.
    out.push_back(hits.empty() ? kInvalidSegment : hits[0].segment);
    // Score for the flight recorder: negated point-to-segment distance,
    // so "higher is more confident" holds across matchers.
    if (capture) {
      rec->scores.push_back(hits.empty() ? 0.0 : -hits[0].distance);
      if (hits.empty()) obs::RecordEvent("nearest:unmatched_point");
    }
    if (capture_cands) {
      rec->candidates.push_back(
          hits.empty() ? std::vector<obs::RecordCandidate>{}
                       : std::vector<obs::RecordCandidate>{
                             {hits[0].segment, hits[0].distance,
                              hits[0].ratio}});
    }
  }
  return out;
}

}  // namespace trmma
