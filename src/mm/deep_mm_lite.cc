#include "mm/deep_mm_lite.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/ops.h"
#include "nn/telemetry.h"

namespace trmma {

using nn::Tensor;
namespace ops = nn::ops;

DeepMmLiteMatcher::DeepMmLiteMatcher(const RoadNetwork& network,
                                     const DeepMmConfig& config)
    : network_(network), config_(config), grid_(network, config.grid_cell_m),
      init_rng_(config.seed),
      cell_emb_(grid_.num_cells(), config.hidden_dim, init_rng_),
      input_fc_(3, config.hidden_dim, init_rng_),
      gru_(config.hidden_dim, config.hidden_dim, init_rng_),
      output_fc_(config.hidden_dim, network.num_segments(), init_rng_) {
  AddChild(&cell_emb_);
  AddChild(&input_fc_);
  AddChild(&gru_);
  AddChild(&output_fc_);
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config.lr);
}

namespace {

nn::Matrix RawFeatures(const RoadNetwork& network, const Trajectory& traj) {
  double min_lat = 1e30;
  double max_lat = -1e30;
  double min_lng = 1e30;
  double max_lng = -1e30;
  for (NodeId i = 0; i < network.num_nodes(); ++i) {
    const LatLng& p = network.node(i).pos;
    min_lat = std::min(min_lat, p.lat);
    max_lat = std::max(max_lat, p.lat);
    min_lng = std::min(min_lng, p.lng);
    max_lng = std::max(max_lng, p.lng);
  }
  const double lat_span = std::max(max_lat - min_lat, 1e-9);
  const double lng_span = std::max(max_lng - min_lng, 1e-9);
  const double t0 = traj.points.front().t;
  const double t_span = std::max(traj.points.back().t - t0, 1e-9);
  nn::Matrix z(traj.size(), 3);
  for (int i = 0; i < traj.size(); ++i) {
    z.at(i, 0) = (traj.points[i].pos.lat - min_lat) / lat_span;
    z.at(i, 1) = (traj.points[i].pos.lng - min_lng) / lng_span;
    z.at(i, 2) = (traj.points[i].t - t0) / t_span;
  }
  return z;
}

}  // namespace

Tensor DeepMmLiteMatcher::EncodeHidden(nn::Tape& tape,
                                       const Trajectory& traj) {
  // DeepMM embeds the grid cell of every GPS point; continuous features
  // are added on top.
  std::vector<int> cells(traj.size());
  for (int i = 0; i < traj.size(); ++i) {
    cells[i] = grid_.CellOf(traj.points[i].pos);
  }
  Tensor x = ops::Add(
      cell_emb_.Forward(tape, cells),
      input_fc_.Forward(ops::Input(tape, RawFeatures(network_, traj))));
  Tensor h = ops::Input(tape, nn::Matrix(1, config_.hidden_dim));
  std::vector<Tensor> hiddens;
  hiddens.reserve(traj.size());
  for (int i = 0; i < traj.size(); ++i) {
    h = gru_.Step(ops::SliceRows(x, i, 1), h);
    hiddens.push_back(h);
  }
  return ops::ConcatRows(hiddens);
}

double DeepMmLiteMatcher::TrainEpoch(const Dataset& dataset, Rng& rng) {
  std::vector<int> order = dataset.train_idx;
  rng.Shuffle(order);
  double total_loss = 0.0;
  int64_t total_points = 0;
  int in_batch = 0;
  double batch_loss = 0.0;
  int64_t batch_points = 0;
  Stopwatch step_watch;
  const int64_t epoch = epochs_trained_++;
  nn::Tape tape;
  for (int idx : order) {
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2) continue;
    Tensor hidden = EncodeHidden(tape, sample.sparse);
    Tensor logits = output_fc_.Forward(hidden);  // len x |E|
    std::vector<int> targets(sample.sparse.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      targets[i] = sample.truth[sample.sparse_indices[i]].segment;
    }
    Tensor loss = ops::Scale(ops::SoftmaxCrossEntropy(logits, targets),
                             1.0 / targets.size());
    total_loss += loss.value().at(0, 0) * targets.size();
    total_points += static_cast<int64_t>(targets.size());
    batch_loss += loss.value().at(0, 0) * targets.size();
    batch_points += static_cast<int64_t>(targets.size());
    tape.Backward(loss);
    tape.Clear();
    if (++in_batch == config_.batch_size) {
      optimizer_->Step();
      nn::LogTrainStep("deep_mm_lite", *optimizer_,
                       batch_points > 0 ? batch_loss / batch_points : 0.0,
                       batch_points, step_watch.LapMillis() / 1e3, epoch);
      in_batch = 0;
      batch_loss = 0.0;
      batch_points = 0;
    }
  }
  if (in_batch > 0) {
    optimizer_->Step();
    nn::LogTrainStep("deep_mm_lite", *optimizer_,
                     batch_points > 0 ? batch_loss / batch_points : 0.0,
                     batch_points, step_watch.LapMillis() / 1e3, epoch);
  }
  return total_points > 0 ? total_loss / total_points : 0.0;
}

std::vector<SegmentId> DeepMmLiteMatcher::MatchPoints(const Trajectory& traj) {
  std::vector<SegmentId> out(traj.size(), kInvalidSegment);
  if (traj.empty()) return out;
  nn::Tape tape;
  Tensor hidden = EncodeHidden(tape, traj);
  Tensor logits = output_fc_.Forward(hidden);
  for (int i = 0; i < traj.size(); ++i) {
    int best = 0;
    for (int c = 1; c < logits.cols(); ++c) {
      if (logits.value().at(i, c) > logits.value().at(i, best)) best = c;
    }
    out[i] = best;
  }
  return out;
}

}  // namespace trmma
