#ifndef TRMMA_MM_LHMM_H_
#define TRMMA_MM_LHMM_H_

#include <vector>

#include "common/random.h"
#include "mm/hmm.h"
#include "traj/dataset.h"

namespace trmma {

/// Learning-enhanced HMM (the LHMM [11] family): keeps the HMM transition
/// model (with UBODT acceleration) but replaces the hand-tuned Gaussian
/// emission with a logistic model over candidate features (perpendicular
/// distance and the four directional cosines) trained on historical
/// trajectories. Train() must be called before matching.
class LhmmMatcher : public HmmMatcher {
 public:
  LhmmMatcher(const RoadNetwork& network, const SegmentRTree& index,
              const Ubodt& ubodt, const HmmConfig& config = {});

  /// Trains the emission model on the dataset's training split with
  /// logistic regression (SGD). Returns the final average training loss.
  double Train(const Dataset& dataset, int epochs, Rng& rng);

  std::string name() const override { return "LHMM"; }

 protected:
  double RouteDistance(SegmentId e1, double r1, SegmentId e2,
                       double r2) override;
  double EmissionLogProb(const Candidate& candidate) const override;

 private:
  static constexpr int kNumFeatures = 6;  // bias, distance, 4 cosines

  static void Featurize(const Candidate& candidate, double sigma,
                        double out[kNumFeatures]);

  const Ubodt& ubodt_;
  double weights_[kNumFeatures] = {0, -1, 0, 0, 0, 0};
  bool trained_ = false;
};

}  // namespace trmma

#endif  // TRMMA_MM_LHMM_H_
