#include "mm/grid_cells.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace trmma {

GridIndexer::GridIndexer(const RoadNetwork& network, double cell_m)
    : network_(network), cell_m_(cell_m) {
  TRMMA_CHECK(network.finalized());
  TRMMA_CHECK_GT(cell_m, 0.0);
  double max_x = -1e30;
  double max_y = -1e30;
  min_x_ = 1e30;
  min_y_ = 1e30;
  for (NodeId i = 0; i < network.num_nodes(); ++i) {
    const Vec2& xy = network.node(i).xy;
    min_x_ = std::min(min_x_, xy.x);
    min_y_ = std::min(min_y_, xy.y);
    max_x = std::max(max_x, xy.x);
    max_y = std::max(max_y, xy.y);
  }
  // One cell of margin on each side absorbs GPS noise outside the extent.
  min_x_ -= cell_m_;
  min_y_ -= cell_m_;
  nx_ = std::max(1, static_cast<int>(
                        std::ceil((max_x - min_x_ + cell_m_) / cell_m_)));
  ny_ = std::max(1, static_cast<int>(
                        std::ceil((max_y - min_y_ + cell_m_) / cell_m_)));
}

int GridIndexer::CellOf(const LatLng& pos) const {
  const Vec2 xy = network_.projection().ToMeters(pos);
  int cx = static_cast<int>(std::floor((xy.x - min_x_) / cell_m_));
  int cy = static_cast<int>(std::floor((xy.y - min_y_) / cell_m_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return cy * nx_ + cx;
}

}  // namespace trmma
