#ifndef TRMMA_MM_GRID_CELLS_H_
#define TRMMA_MM_GRID_CELLS_H_

#include "graph/road_network.h"

namespace trmma {

/// Uniform spatial grid over a road network's extent. The deep baselines
/// (DeepMM [32], MTrajRec [14], the representation-learning + decoder
/// family) all discretize GPS space into grid cells and embed the cell
/// ids; this class provides that discretization.
class GridIndexer {
 public:
  GridIndexer(const RoadNetwork& network, double cell_m = 200.0);

  /// Cell id of a coordinate, clamped to the grid.
  int CellOf(const LatLng& pos) const;

  int num_cells() const { return nx_ * ny_; }
  double cell_m() const { return cell_m_; }

 private:
  const RoadNetwork& network_;
  double cell_m_;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  int nx_ = 1;
  int ny_ = 1;
};

}  // namespace trmma

#endif  // TRMMA_MM_GRID_CELLS_H_
