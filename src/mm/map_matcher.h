#ifndef TRMMA_MM_MAP_MATCHER_H_
#define TRMMA_MM_MAP_MATCHER_H_

#include <string>
#include <vector>

#include "graph/route.h"
#include "traj/types.h"

namespace trmma {

/// Common interface of all map matchers: map each GPS point of a (sparse)
/// trajectory to a road segment (paper Def. 4). Full routes are produced
/// by StitchRoute (mm/route_stitch.h) from the per-point segments, using
/// the same DA route planner for every method, as in the paper's setup.
class MapMatcher {
 public:
  virtual ~MapMatcher() = default;

  /// Segment of every GPS point, in order. Always returns traj.size() ids.
  virtual std::vector<SegmentId> MatchPoints(const Trajectory& traj) = 0;

  /// Display name used in experiment tables.
  virtual std::string name() const = 0;
};

}  // namespace trmma

#endif  // TRMMA_MM_MAP_MATCHER_H_
