#ifndef TRMMA_MM_CANDIDATES_H_
#define TRMMA_MM_CANDIDATES_H_

#include <vector>

#include "graph/spatial_index.h"
#include "traj/types.h"

namespace trmma {

/// One candidate segment of a GPS point (paper Def. 8) together with the
/// four directional cosine features of §IV-B: the cosine similarity of the
/// segment's direction with (0) entrance->p_i, (1) p_i->exit,
/// (2) p_{i-1}->p_i and (3) p_i->p_{i+1}. Boundary points use 0 for the
/// undefined neighbor features.
struct Candidate {
  SegmentId segment = kInvalidSegment;
  double distance = 0.0;  ///< perpendicular distance to p_i
  double ratio = 0.0;     ///< projection ratio on the segment
  double cosine[4] = {0, 0, 0, 0};
};

/// Candidate sets for every point of a trajectory: the top-k_c nearest
/// segments from the R-tree plus directional features. Degraded inputs are
/// repaired instead of failing: points with non-finite coordinates borrow
/// the nearest finite neighbor's position, and an empty primary k-NN result
/// escalates through staged radius widening to a single-nearest-segment
/// fallback (counted on mm.candidates.* metrics). Candidate sets are only
/// empty when the network itself has no segments.
std::vector<std::vector<Candidate>> ComputeCandidates(
    const RoadNetwork& network, const SegmentRTree& index,
    const Trajectory& traj, int kc);

}  // namespace trmma

#endif  // TRMMA_MM_CANDIDATES_H_
