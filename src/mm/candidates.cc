#include "mm/candidates.h"

#include <algorithm>
#include <cmath>

#include "common/deadline.h"
#include "obs/flight_recorder.h"
#include "obs/quality.h"
#include "obs/trace.h"

namespace trmma {
namespace {

/// Staged widening radii for the degraded search path (meters).
constexpr double kWideningRadiiM[] = {250.0, 1000.0, 4000.0};

bool Finite(const Vec2& v) {
  return std::isfinite(v.x) && std::isfinite(v.y);
}

void Count(const char* name, int64_t delta = 1) {
  if (!obs::MetricsEnabled() || delta == 0) return;
  obs::MetricRegistry::Global().GetCounter(name)->Increment(delta);
}

}  // namespace

std::vector<std::vector<Candidate>> ComputeCandidates(
    const RoadNetwork& network, const SegmentRTree& index,
    const Trajectory& traj, int kc) {
  TRMMA_SPAN("mm.candidates");
  const int n = traj.size();
  std::vector<Vec2> xy(n);
  for (int i = 0; i < n; ++i) {
    xy[i] = network.projection().ToMeters(traj.points[i].pos);
  }

  // Degraded input repair: a point with a non-finite coordinate cannot be
  // located, but its neighbors usually can. Borrow the nearest finite
  // neighbor's position so the point still gets a plausible candidate set
  // instead of an empty one (which would force downstream failure).
  int64_t nonfinite = 0;
  for (int i = 0; i < n; ++i) {
    if (Finite(xy[i])) continue;
    ++nonfinite;
    for (int off = 1; off < n; ++off) {
      if (i - off >= 0 && Finite(xy[i - off])) {
        xy[i] = xy[i - off];
        break;
      }
      if (i + off < n && Finite(xy[i + off])) {
        xy[i] = xy[i + off];
        break;
      }
    }
    // No finite point in the whole trajectory: fall back to the network
    // center so the query is at least well-defined.
    if (!Finite(xy[i])) xy[i] = Vec2{0.0, 0.0};
  }
  Count("mm.candidates.nonfinite_repaired", nonfinite);
  if (nonfinite > 0) {
    obs::RecordEvent("candidates:nonfinite_repaired=" +
                     std::to_string(nonfinite));
  }

  std::vector<std::vector<Candidate>> out(n);
  bool expired = false;
  for (int i = 0; i < n; ++i) {
    // Deadline checkpoint: once the request budget is gone, shrink the
    // remaining columns to the single nearest segment. The lattice stays
    // well-formed (no empty columns) but transition fan-out collapses, so
    // the decode finishes fast with a degraded answer.
    if (!expired && DeadlineExpired()) {
      expired = true;
      NoteDeadlineDegradation();
      Count("mm.candidates.deadline_degraded");
      obs::RecordEvent("candidates:deadline_degraded@" + std::to_string(i));
    }
    auto hits = index.KNearest(xy[i], expired ? 1 : kc);
    if (hits.empty()) {
      // Degradation ladder: staged radius widening, then a last-resort
      // single-nearest-segment query. Only reachable on degenerate inputs
      // (kc <= 0 or an indexless network) — the primary k-NN over a
      // non-empty index always returns candidates.
      for (double radius : kWideningRadiiM) {
        hits = index.WithinRadius(xy[i], radius);
        if (!hits.empty()) {
          if (static_cast<int>(hits.size()) > std::max(kc, 1)) {
            hits.resize(std::max(kc, 1));
          }
          Count("mm.candidates.radius_widened");
          obs::RecordEvent("candidates:radius_widened@" + std::to_string(i));
          break;
        }
      }
      if (hits.empty()) {
        hits = index.KNearest(xy[i], 1);
        if (!hits.empty()) {
          Count("mm.candidates.nearest_fallback");
          obs::RecordEvent("candidates:nearest_fallback@" + std::to_string(i));
        }
      }
    }
    out[i].reserve(hits.size());
    for (const SegmentHit& hit : hits) {
      Candidate c;
      c.segment = hit.segment;
      c.distance = hit.distance;
      c.ratio = hit.ratio;
      const Vec2 a = network.SegmentStartXy(hit.segment);
      const Vec2 b = network.SegmentEndXy(hit.segment);
      const Vec2 dir = b - a;
      c.cosine[0] = CosineSimilarity(dir, xy[i] - a);
      c.cosine[1] = CosineSimilarity(dir, b - xy[i]);
      if (i > 0) c.cosine[2] = CosineSimilarity(dir, xy[i] - xy[i - 1]);
      if (i + 1 < n) c.cosine[3] = CosineSimilarity(dir, xy[i + 1] - xy[i]);
      out[i].push_back(c);
    }
  }
  if (obs::MetricsEnabled()) {
    static obs::Counter* const points =
        obs::MetricRegistry::Global().GetCounter("mm.candidates.points");
    points->Increment(n);
  }
  // Quality telemetry: candidate search is the shared entry point of
  // training and inference, so the drift histograms observe the matcher's
  // input features here (train vs serve split by QualityPhaseScope).
  if (obs::QualityEnabled()) {
    obs::QualityLog& qlog = obs::QualityLog::Global();
    qlog.ObserveFeature(obs::kFeatureTrajPoints, n);
    for (int i = 0; i < n; ++i) {
      if (i > 0) {
        qlog.ObserveFeature(obs::kFeatureGapSeconds,
                            traj.points[i].t - traj.points[i - 1].t);
      }
      qlog.ObserveFeature(obs::kFeatureCandidateCount,
                          static_cast<double>(out[i].size()));
      if (out[i].empty()) continue;
      double nearest = out[i].front().distance;
      double kth = nearest;
      for (const Candidate& c : out[i]) {
        nearest = std::min(nearest, c.distance);
        kth = std::max(kth, c.distance);
      }
      qlog.ObserveFeature(obs::kFeatureNearestCandidateM, nearest);
      qlog.ObserveFeature(obs::kFeatureKthCandidateM, kth);
    }
  }
  // Flight recorder: the first candidate computation of a request defines
  // its candidate trace (nested matcher calls don't overwrite it).
  if (obs::RequestRecord* rec = obs::ActiveRecord();
      rec != nullptr && rec->candidates.empty()) {
    rec->candidates.resize(n);
    for (int i = 0; i < n; ++i) {
      rec->candidates[i].reserve(out[i].size());
      for (const Candidate& c : out[i]) {
        rec->candidates[i].push_back({c.segment, c.distance, c.ratio});
      }
    }
  }
  return out;
}

}  // namespace trmma
