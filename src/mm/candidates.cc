#include "mm/candidates.h"

#include "obs/trace.h"

namespace trmma {

std::vector<std::vector<Candidate>> ComputeCandidates(
    const RoadNetwork& network, const SegmentRTree& index,
    const Trajectory& traj, int kc) {
  TRMMA_SPAN("mm.candidates");
  const int n = traj.size();
  std::vector<Vec2> xy(n);
  for (int i = 0; i < n; ++i) {
    xy[i] = network.projection().ToMeters(traj.points[i].pos);
  }

  std::vector<std::vector<Candidate>> out(n);
  for (int i = 0; i < n; ++i) {
    const auto hits = index.KNearest(xy[i], kc);
    out[i].reserve(hits.size());
    for (const SegmentHit& hit : hits) {
      Candidate c;
      c.segment = hit.segment;
      c.distance = hit.distance;
      c.ratio = hit.ratio;
      const Vec2 a = network.SegmentStartXy(hit.segment);
      const Vec2 b = network.SegmentEndXy(hit.segment);
      const Vec2 dir = b - a;
      c.cosine[0] = CosineSimilarity(dir, xy[i] - a);
      c.cosine[1] = CosineSimilarity(dir, b - xy[i]);
      if (i > 0) c.cosine[2] = CosineSimilarity(dir, xy[i] - xy[i - 1]);
      if (i + 1 < n) c.cosine[3] = CosineSimilarity(dir, xy[i + 1] - xy[i]);
      out[i].push_back(c);
    }
  }
  if (obs::MetricsEnabled()) {
    static obs::Counter* const points =
        obs::MetricRegistry::Global().GetCounter("mm.candidates.points");
    points->Increment(n);
  }
  return out;
}

}  // namespace trmma
