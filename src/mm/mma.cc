#include "mm/mma.h"

#include <algorithm>
#include <cmath>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "nn/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace trmma {

using nn::Tensor;

MmaMatcher::MmaMatcher(const RoadNetwork& network, const SegmentRTree& index,
                       const MmaConfig& config)
    : network_(network), index_(index), config_(config),
      init_rng_(config.seed),
      seg_emb_(network.num_segments(), config.d0, init_rng_),
      cand_mlp_(config.d0 + 7, config.d1, config.d2, init_rng_),
      point_fc_(3, config.d2, init_rng_),
      point_trans_(config.d2, config.trans_heads, config.trans_ffn,
                   config.trans_layers, init_rng_),
      attn_mlp_(2 * config.d2, config.d3, 1, init_rng_) {
  AddChild(&seg_emb_);
  AddChild(&cand_mlp_);
  AddChild(&point_fc_);
  AddChild(&point_trans_);
  AddChild(&attn_mlp_);
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config.lr);
}

void MmaMatcher::LoadPretrainedSegmentEmbeddings(const nn::Matrix& table) {
  seg_emb_.LoadPretrained(table);
}

namespace {

/// Min-max normalized [lat, lng, t] features (paper §IV-B) for all points.
nn::Matrix PointFeatures(const RoadNetwork& network, const Trajectory& traj) {
  double min_lat = 1e30;
  double max_lat = -1e30;
  double min_lng = 1e30;
  double max_lng = -1e30;
  for (NodeId i = 0; i < network.num_nodes(); ++i) {
    const LatLng& p = network.node(i).pos;
    min_lat = std::min(min_lat, p.lat);
    max_lat = std::max(max_lat, p.lat);
    min_lng = std::min(min_lng, p.lng);
    max_lng = std::max(max_lng, p.lng);
  }
  const double lat_span = std::max(max_lat - min_lat, 1e-9);
  const double lng_span = std::max(max_lng - min_lng, 1e-9);
  const double t0 = traj.points.front().t;
  const double t_span = std::max(traj.points.back().t - t0, 1e-9);

  nn::Matrix z0(traj.size(), 3);
  for (int i = 0; i < traj.size(); ++i) {
    const GpsPoint& p = traj.points[i];
    z0.at(i, 0) = (p.pos.lat - min_lat) / lat_span;
    z0.at(i, 1) = (p.pos.lng - min_lng) / lng_span;
    z0.at(i, 2) = (p.t - t0) / t_span;
  }
  return z0;
}

/// Repairs empty candidate columns (possible only on a segmentless network
/// or fully corrupt coordinates) by borrowing the nearest non-empty
/// neighbor column, so ForwardLogits always sees at least one candidate
/// per point. Returns false when every column is empty — the trajectory
/// cannot be matched at all and the caller must degrade.
bool EnsureNonEmptyCandidates(std::vector<std::vector<Candidate>>* candidates) {
  auto& cols = *candidates;
  const int n = static_cast<int>(cols.size());
  int first_nonempty = -1;
  for (int i = 0; i < n; ++i) {
    if (!cols[i].empty()) {
      first_nonempty = i;
      break;
    }
  }
  if (first_nonempty < 0) return false;
  for (int i = 0; i < n; ++i) {
    if (cols[i].empty()) {
      cols[i] = i > 0 && !cols[i - 1].empty() ? cols[i - 1]
                                              : cols[first_nonempty];
    }
  }
  return true;
}

}  // namespace

std::vector<Tensor> MmaMatcher::ForwardLogits(
    nn::Tape& tape, const Trajectory& traj,
    const std::vector<std::vector<Candidate>>& candidates) {
  TRMMA_SPAN("mma.forward");
  namespace ops = nn::ops;
  // Point sequence embeddings z^(2) via FC + transformer (Eq. 3).
  Tensor z0 = ops::Input(tape, PointFeatures(network_, traj));
  Tensor z2 = point_trans_.Forward(point_fc_.Forward(z0));

  std::vector<Tensor> logits;
  logits.reserve(traj.size());
  for (int i = 0; i < traj.size(); ++i) {
    const auto& cands = candidates[i];
    // Invariant enforced by EnsureNonEmptyCandidates at every call site.
    TRMMA_CHECK(!cands.empty());
    const int k = static_cast<int>(cands.size());

    // Candidate embeddings c_j (Eq. 1-2). Besides the paper's four
    // directional cosines, each candidate carries its perpendicular
    // distance, projection ratio and rank — geometric signals the paper's
    // id embeddings absorb from millions of trips (DESIGN.md §2).
    std::vector<int> ids(k);
    nn::Matrix feats(k, 7);
    for (int j = 0; j < k; ++j) {
      ids[j] = cands[j].segment;
      if (config_.use_directional) {
        for (int f = 0; f < 4; ++f) feats.at(j, f) = cands[j].cosine[f];
      }
      feats.at(j, 4) = cands[j].distance / 30.0;
      feats.at(j, 5) = cands[j].ratio;
      feats.at(j, 6) = static_cast<double>(j) / config_.kc;
    }
    Tensor emb = seg_emb_.Forward(tape, ids);
    Tensor cmat = cand_mlp_.Forward(
        ops::ConcatCols(emb, ops::Input(tape, std::move(feats))));

    // Point embedding p_i with candidate-context attention (Eq. 7-8).
    Tensor zi = ops::SliceRows(z2, i, 1);
    Tensor point;
    if (config_.use_candidate_context) {
      Tensor scores = attn_mlp_.Forward(
          ops::ConcatCols(ops::RepeatRows(zi, k), cmat));     // k x 1
      Tensor alpha = ops::SoftmaxRows(ops::Transpose(scores));  // 1 x k
      point = ops::Add(zi, ops::MatMul(alpha, cmat));
    } else {
      point = zi;  // TRMMA-C ablation
    }

    // P(c_j|p_i) logits = c_j . p_i (Eq. 9, pre-sigmoid).
    logits.push_back(ops::MatMul(cmat, ops::Transpose(point)));  // k x 1
  }
  return logits;
}

double MmaMatcher::TrainEpoch(const Dataset& dataset, Rng& rng) {
  TRMMA_SPAN("mma.train_epoch");
  namespace ops = nn::ops;
  std::vector<int> order = dataset.train_idx;
  rng.Shuffle(order);

  double total_loss = 0.0;
  int64_t total_points = 0;
  int in_batch = 0;
  double batch_loss = 0.0;
  int64_t batch_points = 0;
  Stopwatch step_watch;
  const int64_t epoch = epochs_trained_++;
  nn::Tape tape;
  for (int idx : order) {
    const TrajectorySample& sample = dataset.samples[idx];
    if (sample.sparse.size() < 2) continue;
    auto candidates =
        ComputeCandidates(network_, index_, sample.sparse, config_.kc);
    if (!EnsureNonEmptyCandidates(&candidates)) continue;
    std::vector<Tensor> logits =
        ForwardLogits(tape, sample.sparse, candidates);

    // Per-point binary cross entropy against the ground-truth segment
    // (Eq. 10); points whose truth is outside the candidate set
    // contribute all-zero labels, exactly as in the paper's formulation.
    Tensor loss;
    for (size_t i = 0; i < logits.size(); ++i) {
      const SegmentId truth =
          sample.truth[sample.sparse_indices[i]].segment;
      nn::Matrix labels(logits[i].rows(), 1);
      for (int j = 0; j < logits[i].rows(); ++j) {
        if (candidates[i][j].segment == truth) labels.at(j, 0) = 1.0;
      }
      Tensor point_loss = ops::BceWithLogits(logits[i], std::move(labels));
      loss = i == 0 ? point_loss : ops::Add(loss, point_loss);
    }
    loss = ops::Scale(loss, 1.0 / static_cast<double>(logits.size()));
    total_loss += loss.value().at(0, 0) * logits.size();
    total_points += static_cast<int64_t>(logits.size());
    batch_loss += loss.value().at(0, 0) * logits.size();
    batch_points += static_cast<int64_t>(logits.size());
    tape.Backward(loss);
    tape.Clear();

    if (++in_batch == config_.batch_size) {
      optimizer_->Step();
      nn::LogTrainStep("mma", *optimizer_,
                       batch_points > 0 ? batch_loss / batch_points : 0.0,
                       batch_points, step_watch.LapMillis() / 1e3, epoch);
      in_batch = 0;
      batch_loss = 0.0;
      batch_points = 0;
    }
  }
  if (in_batch > 0) {
    optimizer_->Step();
    nn::LogTrainStep("mma", *optimizer_,
                     batch_points > 0 ? batch_loss / batch_points : 0.0,
                     batch_points, step_watch.LapMillis() / 1e3, epoch);
  }
  return total_points > 0 ? total_loss / total_points : 0.0;
}

Status MmaMatcher::Save(const std::string& path) {
  return nn::SaveParameters(Parameters(), path);
}

Status MmaMatcher::Load(const std::string& path) {
  return nn::LoadParameters(Parameters(), path);
}

std::vector<SegmentId> MmaMatcher::MatchPoints(const Trajectory& traj) {
  return MatchPointsWithScores(traj, nullptr);
}

std::vector<SegmentId> MmaMatcher::MatchPointsWithScores(
    const Trajectory& traj, std::vector<double>* scores) {
  TRMMA_SPAN("mma.match");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const points =
        obs::MetricRegistry::Global().GetCounter("mma.points_matched");
    points->Increment(traj.size());
  }
  std::vector<SegmentId> out(traj.size(), kInvalidSegment);
  if (scores != nullptr) scores->assign(traj.size(), 0.0);
  if (traj.empty()) return out;

  auto candidates = ComputeCandidates(network_, index_, traj, config_.kc);
  if (!EnsureNonEmptyCandidates(&candidates)) return out;  // all unmatched
  obs::RequestRecord* rec = obs::ActiveRecord();
  const bool capture_scores = rec != nullptr && rec->scores.empty();
  if (capture_scores) rec->scores.assign(traj.size(), 0.0);
  // Likewise the chosen candidate per point (segment + offset), so the
  // record pairs each confidence with the decision it scores.
  const bool capture_matched = rec != nullptr && rec->matched.empty();
  if (capture_matched) rec->matched.resize(traj.size());
  // Deadline checkpoint: the transformer forward pass is the expensive
  // block here. Once the budget is gone, snap each point to its closest
  // candidate by projection distance (the classifier's strongest single
  // feature) with a neutral confidence instead of running the network.
  if (DeadlineExpired()) {
    NoteDeadlineDegradation();
    if (obs::MetricsEnabled()) {
      obs::MetricRegistry::Global()
          .GetCounter("mma.deadline_degraded")
          ->Increment();
    }
    obs::RecordEvent("mma:deadline_degraded");
    for (int i = 0; i < traj.size(); ++i) {
      int best = 0;
      for (size_t j = 1; j < candidates[i].size(); ++j) {
        if (candidates[i][j].distance < candidates[i][best].distance) {
          best = static_cast<int>(j);
        }
      }
      out[i] = candidates[i][best].segment;
      if (scores != nullptr) (*scores)[i] = 0.5;
      if (capture_scores) rec->scores[i] = 0.5;
      if (capture_matched) {
        rec->matched[i] = {candidates[i][best].segment,
                           candidates[i][best].ratio, traj.points[i].t};
      }
    }
    return out;
  }
  nn::Tape tape;
  std::vector<Tensor> logits = ForwardLogits(tape, traj, candidates);
  for (int i = 0; i < traj.size(); ++i) {
    int best = 0;
    for (int j = 1; j < logits[i].rows(); ++j) {
      if (logits[i].value().at(j, 0) > logits[i].value().at(best, 0)) {
        best = j;
      }
    }
    out[i] = candidates[i][best].segment;
    const double z = logits[i].value().at(best, 0);
    const double prob = 1.0 / (1.0 + std::exp(-z));
    if (scores != nullptr) (*scores)[i] = prob;
    // Flight recorder: capture the classifier's confidence even when the
    // caller doesn't ask for scores (the common MatchPoints path).
    if (capture_scores) rec->scores[i] = prob;
    if (capture_matched) {
      rec->matched[i] = {candidates[i][best].segment,
                         candidates[i][best].ratio, traj.points[i].t};
    }
  }
  return out;
}

}  // namespace trmma
