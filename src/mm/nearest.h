#ifndef TRMMA_MM_NEAREST_H_
#define TRMMA_MM_NEAREST_H_

#include "graph/spatial_index.h"
#include "mm/map_matcher.h"

namespace trmma {

/// Baseline that maps every GPS point to its nearest segment (the
/// "Nearest" competitor in paper Tables IV/V). As §IV-A shows, the nearest
/// segment is correct only ~70% of the time, which is what this baseline
/// demonstrates.
class NearestMatcher : public MapMatcher {
 public:
  NearestMatcher(const RoadNetwork& network, const SegmentRTree& index);

  std::vector<SegmentId> MatchPoints(const Trajectory& traj) override;
  std::string name() const override { return "Nearest"; }

 private:
  const RoadNetwork& network_;
  const SegmentRTree& index_;
};

}  // namespace trmma

#endif  // TRMMA_MM_NEAREST_H_
