#ifndef TRMMA_MM_ROUTE_STITCH_H_
#define TRMMA_MM_ROUTE_STITCH_H_

#include <vector>

#include "graph/shortest_path.h"
#include "graph/transition_stats.h"

namespace trmma {

/// A maximal routable run of matched points: `route` connects the matched
/// segments of observations [first_point, last_point] (inclusive indices
/// into the trajectory that produced `point_segments`). Consecutive
/// sections are separated by an unroutable segment pair (disconnected
/// subgraphs, or a matching error the planner cannot bridge).
struct RouteSection {
  Route route;
  int first_point = 0;
  int last_point = 0;
};

/// Connects per-point matched segments into routable sections (MMA
/// Algorithm 1, lines 10-13): consecutive distinct segments are linked with
/// the DA route planner, falling back to shortest path within a budget. An
/// unroutable pair closes the current section and starts a new one, so
/// callers can recover each section independently instead of decoding over
/// a route with a hidden discontinuity. Invalid segment ids
/// (kInvalidSegment) are treated as "same as previous point"; a trajectory
/// whose points are all invalid yields no sections. Section splits are
/// counted on the mm.stitch.disconnected metric.
std::vector<RouteSection> StitchRouteSections(
    const RoadNetwork& network, DaRoutePlanner& planner,
    ShortestPathEngine& fallback,
    const std::vector<SegmentId>& point_segments);

/// Single-route view of StitchRouteSections (the paper's formulation):
/// section routes concatenated back to back. When sections split, the
/// result contains a discontinuity, exactly as in the rare disconnected
/// case discussed in §VI-A.
Route StitchRoute(const RoadNetwork& network, DaRoutePlanner& planner,
                  ShortestPathEngine& fallback,
                  const std::vector<SegmentId>& point_segments);

}  // namespace trmma

#endif  // TRMMA_MM_ROUTE_STITCH_H_
