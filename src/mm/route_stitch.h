#ifndef TRMMA_MM_ROUTE_STITCH_H_
#define TRMMA_MM_ROUTE_STITCH_H_

#include <vector>

#include "graph/shortest_path.h"
#include "graph/transition_stats.h"

namespace trmma {

/// Connects per-point matched segments into a route (MMA Algorithm 1,
/// lines 10-13): consecutive distinct segments are linked with the DA
/// route planner; if the planner fails within its budget the shortest
/// path is used as the paper's fallback; if the pair is genuinely
/// disconnected the destination segment is appended as-is (the rare case
/// discussed in §VI-A).
Route StitchRoute(const RoadNetwork& network, DaRoutePlanner& planner,
                  ShortestPathEngine& fallback,
                  const std::vector<SegmentId>& point_segments);

}  // namespace trmma

#endif  // TRMMA_MM_ROUTE_STITCH_H_
