#include "obs/stack_walk.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace trmma {
namespace obs {
namespace {

/// Helper threads that register, park until released, then unregister —
/// live rendezvous targets for the capture tests.
class ParkedThreads {
 public:
  explicit ParkedThreads(int n, const char* name) {
    for (int i = 0; i < n; ++i) {
      threads_.emplace_back([this, name] {
        ScopedThreadRegistration reg(name);
        registered_.fetch_add(1);
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return released_; });
      });
    }
    // Wait until every helper has registered.
    while (registered_.load() < n) std::this_thread::yield();
  }

  ~ParkedThreads() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

 private:
  std::vector<std::thread> threads_;
  std::atomic<int> registered_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(StackWalkTest, CaptureCallerStackRespectsSupportGate) {
  void* frames[kStackMaxFrames];
  const int depth = CaptureCallerStack(frames, kStackMaxFrames);
  if (StackWalkSupported()) {
    // At minimum the immediate caller's frame must be walkable.
    EXPECT_GT(depth, 0);
    for (int i = 0; i < depth; ++i) EXPECT_NE(frames[i], nullptr);
  } else {
    EXPECT_EQ(depth, 0);
  }
}

TEST(StackWalkTest, SymbolizePcNeverReturnsEmpty) {
  // A real code address symbolizes to something; a garbage address falls
  // back to its hex rendering. Either way the result is non-empty and free
  // of folded-stack separators.
  void* frames[kStackMaxFrames];
  const int depth = CaptureCallerStack(frames, kStackMaxFrames);
  std::vector<void*> pcs = {reinterpret_cast<void*>(0x12345)};
  for (int i = 0; i < depth; ++i) pcs.push_back(frames[i]);
  for (void* pc : pcs) {
    const std::string symbol = SymbolizePc(pc);
    EXPECT_FALSE(symbol.empty());
    EXPECT_EQ(symbol.find(';'), std::string::npos);
    EXPECT_EQ(symbol.find('\n'), std::string::npos);
  }
}

TEST(StackWalkTest, RegistryTracksRegistrationLifecycle) {
  const int before = ThreadRegistry::Global().registered_count();
  {
    ScopedThreadRegistration reg("test.lifecycle");
    EXPECT_EQ(ThreadRegistry::Global().registered_count(), before + 1);
    // Re-registration renames in place instead of claiming a second slot.
    ThreadRegistry::Global().RegisterCurrentThread("test.renamed");
    EXPECT_EQ(ThreadRegistry::Global().registered_count(), before + 1);
  }
  EXPECT_EQ(ThreadRegistry::Global().registered_count(), before);
}

TEST(StackWalkTest, CaptureAllStacksReachesEveryRegisteredThread) {
  ScopedThreadRegistration reg("test.caller");
  ParkedThreads parked(3, "test.parked");

  ThreadStack stacks[ThreadRegistry::kMaxThreads];
  const int count = ThreadRegistry::Global().CaptureAllStacks(
      stacks, ThreadRegistry::kMaxThreads);
  // Caller + the three parked helpers (other suites' threads are gone).
  ASSERT_GE(count, 4);
  EXPECT_STREQ(stacks[0].name, "test.caller");  // entry 0 is the caller
  int parked_seen = 0;
  for (int i = 0; i < count; ++i) {
    EXPECT_GT(stacks[i].tid, 0);
    if (std::string(stacks[i].name) == "test.parked") ++parked_seen;
    if (StackWalkSupported() && i == 0) {
      // The caller's own synchronous walk must always produce frames.
      EXPECT_GT(stacks[i].depth, 0);
    }
  }
  EXPECT_EQ(parked_seen, 3);
}

TEST(StackWalkTest, CaptureThreadStackTargetsOneThread) {
  ScopedThreadRegistration reg("test.targeted");
  ThreadStack stack;
  // Self-capture works without a rendezvous.
  ASSERT_TRUE(ThreadRegistry::Global().CaptureThreadStack(CurrentThreadId(),
                                                          &stack));
  EXPECT_EQ(stack.tid, CurrentThreadId());
  if (StackWalkSupported()) EXPECT_GT(stack.depth, 0);
  // Unknown tids are reported as failures, not garbage.
  EXPECT_FALSE(ThreadRegistry::Global().CaptureThreadStack(1, &stack));
}

TEST(StackWalkTest, FormatThreadStacksRendersNamesAndFrames) {
  ScopedThreadRegistration reg("test.format");
  ThreadStack stacks[ThreadRegistry::kMaxThreads];
  const int count = ThreadRegistry::Global().CaptureAllStacks(
      stacks, ThreadRegistry::kMaxThreads);
  ASSERT_GE(count, 1);
  stacks[0].faulting = true;
  const std::string text = FormatThreadStacks(stacks, count);
  EXPECT_NE(text.find("thread "), std::string::npos);
  EXPECT_NE(text.find("test.format"), std::string::npos);
  EXPECT_NE(text.find("(faulting)"), std::string::npos);
  if (!StackWalkSupported()) {
    EXPECT_NE(text.find("<stack unavailable>"), std::string::npos);
  }
}

}  // namespace
}  // namespace obs
}  // namespace trmma
