#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "graph/route.h"
#include "graph/shortest_path.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

/// Floyd-Warshall reference distances over nodes.
std::vector<std::vector<double>> FloydWarshall(const RoadNetwork& g) {
  const int n = g.num_nodes();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, inf));
  for (int i = 0; i < n; ++i) d[i][i] = 0.0;
  for (SegmentId s = 0; s < g.num_segments(); ++s) {
    const RoadSegment& seg = g.segment(s);
    d[seg.from][seg.to] = std::min(d[seg.from][seg.to], seg.length_m);
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

TEST(ShortestPathTest, TrivialSameNode) {
  auto g = test::MakeGrid(3, 3);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  auto r = engine.NodeToNode(4, 4);
  EXPECT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.distance_m, 0.0);
  EXPECT_TRUE(r.segments.empty());
}

TEST(ShortestPathTest, GridManhattanDistance) {
  auto g = test::MakeGrid(5, 5, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  // (0,0) -> (3,2): manhattan 5 blocks.
  auto r = engine.NodeToNode(0, 2 * 5 + 3);
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.distance_m, 500.0, 2.0);
  EXPECT_EQ(r.segments.size(), 5u);
}

TEST(ShortestPathTest, PathIsConnectedAndConsistent) {
  auto g = test::MakeCityNetwork();
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId src = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    NodeId dst = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    auto r = engine.NodeToNode(src, dst);
    ASSERT_TRUE(r.found);  // generator guarantees strong connectivity
    if (!r.segments.empty()) {
      EXPECT_EQ(g->segment(r.segments.front()).from, src);
      EXPECT_EQ(g->segment(r.segments.back()).to, dst);
      EXPECT_TRUE(IsConnectedRoute(*g, r.segments));
      EXPECT_NEAR(RouteLength(*g, r.segments), r.distance_m, 1e-6);
    }
  }
}

TEST(ShortestPathTest, MatchesFloydWarshall) {
  auto g = test::MakeCityNetwork(4);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  auto ref = FloydWarshall(*g);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    NodeId src = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    NodeId dst = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    auto r = engine.NodeToNode(src, dst);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.distance_m, ref[src][dst], 1e-6);
  }
}

TEST(ShortestPathTest, MaxDistCutsSearch) {
  auto g = test::MakeGrid(10, 10, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  auto r = engine.NodeToNode(0, 99, 300.0);  // target is 1800m away
  EXPECT_FALSE(r.found);
}

TEST(ShortestPathTest, ReusableAcrossQueries) {
  auto g = test::MakeGrid(6, 6, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  const double d1 = engine.NodeToNode(0, 35).distance_m;
  (void)engine.NodeToNode(10, 20, 150.0);  // bounded query in between
  const double d2 = engine.NodeToNode(0, 35).distance_m;
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(ShortestPathTest, SegmentToSegmentIncludesEndpoints) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  // Find eastbound chain 0->1, 1->2, 2->3.
  std::vector<SegmentId> east;
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    if (g->segment(i).to == g->segment(i).from + 1) east.push_back(i);
  }
  ASSERT_EQ(east.size(), 3u);
  auto r = engine.SegmentToSegment(east[0], east[2]);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.segments.front(), east[0]);
  EXPECT_EQ(r.segments.back(), east[2]);
  EXPECT_TRUE(IsConnectedRoute(*g, r.segments));
  EXPECT_NEAR(r.distance_m, 100.0, 1.0);  // the middle gap segment
}

TEST(ShortestPathTest, SegmentToSameSegment) {
  auto g = test::MakeGrid(3, 3);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  auto r = engine.SegmentToSegment(2, 2);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.segments, Route{2});
  EXPECT_DOUBLE_EQ(r.distance_m, 0.0);
}

TEST(ShortestPathTest, PointToPointSameSegmentForward) {
  auto g = test::MakeGrid(2, 1, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  const double d = engine.PointToPointDistance(0, 0.2, 0, 0.7);
  EXPECT_NEAR(d, 0.5 * g->segment(0).length_m, 1e-6);
}

TEST(ShortestPathTest, PointToPointBackwardWrapsAround) {
  auto g = test::MakeGrid(3, 3, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  // Going "backwards" on the same segment requires looping via the graph.
  const double d = engine.PointToPointDistance(0, 0.7, 0, 0.2);
  EXPECT_GT(d, 0.0);
  EXPECT_TRUE(std::isfinite(d));
}

TEST(ShortestPathTest, BoundedVisitsNodesWithinBudget) {
  auto g = test::MakeGrid(6, 6, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  int visited = 0;
  double max_seen = 0.0;
  engine.Bounded(0, 250.0, [&](NodeId node, double dist, SegmentId via) {
    ++visited;
    max_seen = std::max(max_seen, dist);
    if (node == 0) {
      EXPECT_EQ(via, kInvalidSegment);
      EXPECT_DOUBLE_EQ(dist, 0.0);
    }
  });
  EXPECT_LE(max_seen, 250.0);
  // Within 250m of a 100m grid corner: (0,0),(1,0),(0,1),(2,0),(1,1),(0,2).
  EXPECT_EQ(visited, 6);
}

}  // namespace
}  // namespace trmma
