#include <gtest/gtest.h>

#include <cmath>

#include "mm/candidates.h"
#include "mm/grid_cells.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(CandidatesTest, ReturnsKcCandidatesPerPoint) {
  Dataset ds = test::MakeTinyDataset("XA", 6);
  SegmentRTree index(*ds.network);
  const auto& sample = ds.samples[0];
  auto cands = ComputeCandidates(*ds.network, index, sample.sparse, 10);
  ASSERT_EQ(cands.size(), static_cast<size_t>(sample.sparse.size()));
  for (const auto& point_cands : cands) {
    EXPECT_EQ(point_cands.size(), 10u);
  }
}

TEST(CandidatesTest, SortedByDistance) {
  Dataset ds = test::MakeTinyDataset("XA", 4);
  SegmentRTree index(*ds.network);
  auto cands = ComputeCandidates(*ds.network, index, ds.samples[0].sparse, 8);
  for (const auto& pc : cands) {
    for (size_t j = 1; j < pc.size(); ++j) {
      EXPECT_LE(pc[j - 1].distance, pc[j].distance + 1e-9);
    }
  }
}

TEST(CandidatesTest, CosineFeaturesInRange) {
  Dataset ds = test::MakeTinyDataset("CD", 4);
  SegmentRTree index(*ds.network);
  auto cands = ComputeCandidates(*ds.network, index, ds.samples[0].sparse, 10);
  for (const auto& pc : cands) {
    for (const Candidate& c : pc) {
      for (int f = 0; f < 4; ++f) {
        EXPECT_GE(c.cosine[f], -1.0 - 1e-9);
        EXPECT_LE(c.cosine[f], 1.0 + 1e-9);
      }
      EXPECT_GE(c.ratio, 0.0);
      EXPECT_LE(c.ratio, 1.0);
      EXPECT_GE(c.distance, 0.0);
    }
  }
}

TEST(CandidatesTest, BoundaryPointsZeroNeighborCosines) {
  Dataset ds = test::MakeTinyDataset("XA", 4);
  SegmentRTree index(*ds.network);
  auto cands = ComputeCandidates(*ds.network, index, ds.samples[0].sparse, 5);
  // First point: feature 2 (prev->cur) undefined -> 0.
  for (const Candidate& c : cands.front()) {
    EXPECT_DOUBLE_EQ(c.cosine[2], 0.0);
  }
  // Last point: feature 3 (cur->next) undefined -> 0.
  for (const Candidate& c : cands.back()) {
    EXPECT_DOUBLE_EQ(c.cosine[3], 0.0);
  }
}

TEST(CandidatesTest, TrueSegmentUsuallyInTopTen) {
  // The paper's Fig. 2 premise: with k_c = 10 the true segment is almost
  // always among the candidates.
  Dataset ds = test::MakeTinyDataset("XA", 40);
  SegmentRTree index(*ds.network);
  int64_t total = 0;
  int64_t hit = 0;
  for (const auto& sample : ds.samples) {
    auto cands = ComputeCandidates(*ds.network, index, sample.sparse, 10);
    for (size_t i = 0; i < cands.size(); ++i) {
      const SegmentId truth = sample.truth[sample.sparse_indices[i]].segment;
      for (const Candidate& c : cands[i]) {
        if (c.segment == truth) {
          ++hit;
          break;
        }
      }
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(hit) / total, 0.95);
}

TEST(CandidatesTest, NearestAloneIsNotEnough) {
  // ... while the top-1 hit rate is clearly lower (the motivation for
  // classification over a candidate set).
  Dataset ds = test::MakeTinyDataset("XA", 40);
  SegmentRTree index(*ds.network);
  int64_t total = 0;
  int64_t hit1 = 0;
  for (const auto& sample : ds.samples) {
    auto cands = ComputeCandidates(*ds.network, index, sample.sparse, 1);
    for (size_t i = 0; i < cands.size(); ++i) {
      const SegmentId truth = sample.truth[sample.sparse_indices[i]].segment;
      hit1 += cands[i][0].segment == truth;
      ++total;
    }
  }
  EXPECT_LT(static_cast<double>(hit1) / total, 0.95);
}

TEST(GridIndexerTest, CellsCoverNetwork) {
  Dataset ds = test::MakeTinyDataset("XA", 2);
  GridIndexer grid(*ds.network, 200.0);
  EXPECT_GT(grid.num_cells(), 4);
  for (NodeId i = 0; i < ds.network->num_nodes(); ++i) {
    const int cell = grid.CellOf(ds.network->node(i).pos);
    EXPECT_GE(cell, 0);
    EXPECT_LT(cell, grid.num_cells());
  }
}

TEST(GridIndexerTest, NearbyPointsShareCell) {
  Dataset ds = test::MakeTinyDataset("XA", 2);
  GridIndexer grid(*ds.network, 500.0);
  const LatLng base = ds.network->node(0).pos;
  LatLng nudged = base;
  nudged.lat += 1e-5;  // ~1m
  EXPECT_EQ(grid.CellOf(base), grid.CellOf(nudged));
}

TEST(GridIndexerTest, FarPointsDifferentCells) {
  Dataset ds = test::MakeTinyDataset("XA", 2);
  GridIndexer grid(*ds.network, 100.0);
  // Two opposite corners of the network.
  int c0 = grid.CellOf(ds.network->node(0).pos);
  int c1 = grid.CellOf(ds.network->node(ds.network->num_nodes() - 1).pos);
  EXPECT_NE(c0, c1);
}

}  // namespace
}  // namespace trmma
