#include <gtest/gtest.h>

#include <cstdio>

#include <cmath>

#include "eval/metrics.h"
#include "mm/hmm.h"
#include "mm/mma.h"
#include "mm/nearest.h"
#include "recovery/linear.h"
#include "recovery/trmma.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

class TrmmaFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::MakeTinyDataset("XA", 320));
    index_ = new SegmentRTree(*dataset_->network);
    ubodt_ = new Ubodt(*dataset_->network, 3000.0);
    stats_ = new TransitionStats(*dataset_->network);
    for (int idx : dataset_->train_idx) {
      stats_->AddRoute(dataset_->samples[idx].route);
    }
    planner_ = new DaRoutePlanner(*dataset_->network, *stats_);
    engine_ = new ShortestPathEngine(*dataset_->network);

    MmaConfig mma_config;
    mma_config.d0 = 16;
    mma_config.d1 = 32;
    mma_config.d2 = 16;
    mma_config.d3 = 32;
    mma_config.trans_ffn = 32;
    mma_ = new MmaMatcher(*dataset_->network, *index_, mma_config);
    Rng rng(1);
    for (int e = 0; e < 4; ++e) mma_->TrainEpoch(*dataset_, rng);
  }
  static void TearDownTestSuite() {
    delete mma_;
    delete engine_;
    delete planner_;
    delete stats_;
    delete ubodt_;
    delete index_;
    delete dataset_;
  }

  static TrmmaConfig SmallConfig() {
    TrmmaConfig config;
    config.dh = 16;
    config.trans_ffn = 32;
    return config;
  }

  static double Accuracy(RecoveryMethod& method, int max_samples = 25) {
    double acc = 0;
    int count = 0;
    for (int idx : dataset_->test_idx) {
      if (count >= max_samples) break;
      const auto& sample = dataset_->samples[idx];
      auto rec = method.Recover(sample.sparse, dataset_->epsilon_s);
      acc += PointwiseAccuracy(rec, sample.truth);
      ++count;
    }
    return acc / count;
  }

  static Dataset* dataset_;
  static SegmentRTree* index_;
  static Ubodt* ubodt_;
  static TransitionStats* stats_;
  static DaRoutePlanner* planner_;
  static ShortestPathEngine* engine_;
  static MmaMatcher* mma_;
};

Dataset* TrmmaFixture::dataset_ = nullptr;
SegmentRTree* TrmmaFixture::index_ = nullptr;
Ubodt* TrmmaFixture::ubodt_ = nullptr;
TransitionStats* TrmmaFixture::stats_ = nullptr;
DaRoutePlanner* TrmmaFixture::planner_ = nullptr;
ShortestPathEngine* TrmmaFixture::engine_ = nullptr;
MmaMatcher* TrmmaFixture::mma_ = nullptr;

TEST_F(TrmmaFixture, RecoveredTrajectoryHasTruthLength) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(2);
  trmma.TrainEpoch(*dataset_, rng);
  for (int t = 0; t < 10; ++t) {
    const auto& sample = dataset_->samples[dataset_->test_idx[t]];
    auto rec = trmma.Recover(sample.sparse, dataset_->epsilon_s);
    EXPECT_EQ(rec.size(), sample.truth.size());
  }
}

TEST_F(TrmmaFixture, TimestampsOnEpsilonGrid) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(3);
  trmma.TrainEpoch(*dataset_, rng);
  const auto& sample = dataset_->samples[dataset_->test_idx[0]];
  auto rec = trmma.Recover(sample.sparse, dataset_->epsilon_s);
  for (size_t i = 1; i < rec.size(); ++i) {
    EXPECT_NEAR(rec[i].t - rec[i - 1].t, dataset_->epsilon_s, 1e-6);
  }
}

TEST_F(TrmmaFixture, TrainingReducesLoss) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(4);
  const double first = trmma.TrainEpoch(*dataset_, rng);
  double last = first;
  for (int e = 0; e < 4; ++e) last = trmma.TrainEpoch(*dataset_, rng);
  EXPECT_LT(last, first * 0.9);
}

TEST_F(TrmmaFixture, BeatsNearestPlusLinear) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(5);
  for (int e = 0; e < 8; ++e) trmma.TrainEpoch(*dataset_, rng);
  NearestMatcher nearest(*dataset_->network, *index_);
  LinearRecovery nearest_linear(*dataset_->network, &nearest, planner_,
                                engine_, "Nearest+linear");
  EXPECT_GT(Accuracy(trmma), Accuracy(nearest_linear));
}

TEST_F(TrmmaFixture, TeacherForcedDiagnosticsImprove) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  std::vector<int> probe(dataset_->test_idx.begin(),
                         dataset_->test_idx.begin() + 20);
  auto before = trmma.EvaluateTeacherForced(*dataset_, probe);
  Rng rng(6);
  for (int e = 0; e < 5; ++e) trmma.TrainEpoch(*dataset_, rng);
  auto after = trmma.EvaluateTeacherForced(*dataset_, probe);
  EXPECT_GT(after.cls_accuracy, before.cls_accuracy - 0.05);
  EXPECT_GT(after.cls_accuracy, 0.5);
  EXPECT_LT(after.ratio_mae, 0.35);
}

TEST_F(TrmmaFixture, SegmentsStayOnRouteOrder) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(7);
  trmma.TrainEpoch(*dataset_, rng);
  const auto& sample = dataset_->samples[dataset_->test_idx[2]];
  auto rec = trmma.Recover(sample.sparse, dataset_->epsilon_s);
  // Ratios and ids valid.
  for (const MatchedPoint& a : rec) {
    EXPECT_GE(a.segment, 0);
    EXPECT_LT(a.segment, dataset_->network->num_segments());
    EXPECT_GE(a.ratio, 0.0);
    EXPECT_LT(a.ratio, 1.0);
  }
}

TEST_F(TrmmaFixture, DualformerAblationRuns) {
  TrmmaConfig config = SmallConfig();
  config.use_dualformer = false;  // TRMMA-DF
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_, config,
                      "TRMMA-DF");
  Rng rng(8);
  EXPECT_GT(trmma.TrainEpoch(*dataset_, rng), 0.0);
  auto rec = trmma.Recover(dataset_->samples[dataset_->test_idx[0]].sparse,
                           dataset_->epsilon_s);
  EXPECT_FALSE(rec.empty());
}

TEST_F(TrmmaFixture, WorksWithHmmMatcherAblation) {
  HmmMatcher hmm(*dataset_->network, *index_);
  TrmmaRecovery trmma(*dataset_->network, &hmm, planner_, engine_,
                      SmallConfig(), "TRMMA-HMM");
  Rng rng(9);
  trmma.TrainEpoch(*dataset_, rng);
  auto rec = trmma.Recover(dataset_->samples[dataset_->test_idx[0]].sparse,
                           dataset_->epsilon_s);
  EXPECT_EQ(rec.size(),
            dataset_->samples[dataset_->test_idx[0]].truth.size());
}

TEST_F(TrmmaFixture, DeterministicInference) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(10);
  trmma.TrainEpoch(*dataset_, rng);
  const auto& sparse = dataset_->samples[dataset_->test_idx[0]].sparse;
  auto a = trmma.Recover(sparse, dataset_->epsilon_s);
  auto b = trmma.Recover(sparse, dataset_->epsilon_s);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].segment, b[i].segment);
    EXPECT_DOUBLE_EQ(a[i].ratio, b[i].ratio);
  }
}

TEST_F(TrmmaFixture, FastDecodeMatchesReference) {
  // The tape-free inference path must reproduce the autograd reference
  // bit-for-bit in segments and closely in ratios.
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(55);
  for (int e = 0; e < 3; ++e) trmma.TrainEpoch(*dataset_, rng);
  for (int t = 0; t < 8; ++t) {
    const auto& sparse = dataset_->samples[dataset_->test_idx[t]].sparse;
    auto fast = trmma.Recover(sparse, dataset_->epsilon_s);
    auto ref = trmma.RecoverReference(sparse, dataset_->epsilon_s);
    ASSERT_EQ(fast.size(), ref.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].segment, ref[i].segment) << "point " << i;
      EXPECT_NEAR(fast[i].ratio, ref[i].ratio, 1e-9) << "point " << i;
    }
  }
}

TEST_F(TrmmaFixture, CheckpointRoundTrip) {
  TrmmaRecovery trained(*dataset_->network, mma_, planner_, engine_,
                        SmallConfig());
  Rng rng(77);
  for (int e = 0; e < 2; ++e) trained.TrainEpoch(*dataset_, rng);
  const std::string path = testing::TempDir() + "/trmma_ckpt.bin";
  ASSERT_TRUE(trained.Save(path).ok());

  TrmmaRecovery restored(*dataset_->network, mma_, planner_, engine_,
                         SmallConfig());
  ASSERT_TRUE(restored.Load(path).ok());
  const auto& sparse = dataset_->samples[dataset_->test_idx[0]].sparse;
  auto a = trained.Recover(sparse, dataset_->epsilon_s);
  auto b = restored.Recover(sparse, dataset_->epsilon_s);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].segment, b[i].segment);
    EXPECT_DOUBLE_EQ(a[i].ratio, b[i].ratio);
  }
  std::remove(path.c_str());
}

TEST_F(TrmmaFixture, ObservedPointsPreservedInOutput) {
  TrmmaRecovery trmma(*dataset_->network, mma_, planner_, engine_,
                      SmallConfig());
  Rng rng(11);
  trmma.TrainEpoch(*dataset_, rng);
  const auto& sample = dataset_->samples[dataset_->test_idx[1]];
  auto rec = trmma.Recover(sample.sparse, dataset_->epsilon_s);
  // The timestamps of observed sparse points must appear in the output.
  size_t found = 0;
  for (const GpsPoint& p : sample.sparse.points) {
    for (const MatchedPoint& a : rec) {
      if (std::abs(a.t - p.t) < 1e-6) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, sample.sparse.points.size());
}

}  // namespace
}  // namespace trmma
