#include <gtest/gtest.h>

#include "common/random.h"
#include "traj/sparsify.h"
#include "traj/types.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(TrajTypesTest, GpsFromMatchedInterpolates) {
  auto g = test::MakeGrid(2, 1, 100.0);
  ASSERT_NE(g, nullptr);
  MatchedPoint a{0, 0.5, 42.0};
  GpsPoint p = GpsFromMatched(*g, a);
  EXPECT_DOUBLE_EQ(p.t, 42.0);
  const Vec2 xy = g->projection().ToMeters(p.pos);
  EXPECT_NEAR((xy - g->PointOnSegment(0, 0.5)).Norm(), 0.0, 1e-6);
}

TEST(TrajTypesTest, ProjectToSegmentRoundTrip) {
  auto g = test::MakeGrid(3, 3, 100.0);
  ASSERT_NE(g, nullptr);
  MatchedPoint truth{4, 0.3, 10.0};
  GpsPoint gps = GpsFromMatched(*g, truth);
  MatchedPoint back = ProjectToSegment(*g, gps, 4);
  EXPECT_EQ(back.segment, 4);
  EXPECT_NEAR(back.ratio, 0.3, 1e-6);
  EXPECT_DOUBLE_EQ(back.t, 10.0);
}

TEST(SparsifyTest, KeepsEndpoints) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = SparseIndices(30, 0.1, rng);
    ASSERT_GE(idx.size(), 2u);
    EXPECT_EQ(idx.front(), 0);
    EXPECT_EQ(idx.back(), 29);
  }
}

TEST(SparsifyTest, IndicesStrictlyIncreasing) {
  Rng rng(2);
  auto idx = SparseIndices(100, 0.3, rng);
  for (size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
}

TEST(SparsifyTest, GammaOneKeepsEverything) {
  Rng rng(3);
  auto idx = SparseIndices(25, 1.0, rng);
  EXPECT_EQ(idx.size(), 25u);
}

TEST(SparsifyTest, AverageKeepRateMatchesGamma) {
  Rng rng(4);
  int64_t kept = 0;
  int64_t interior = 0;
  for (int trial = 0; trial < 300; ++trial) {
    auto idx = SparseIndices(52, 0.2, rng);
    kept += static_cast<int64_t>(idx.size()) - 2;
    interior += 50;
  }
  EXPECT_NEAR(static_cast<double>(kept) / interior, 0.2, 0.02);
}

TEST(SparsifyTest, MinimumLengthTwo) {
  Rng rng(5);
  auto idx = SparseIndices(2, 0.1, rng);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(SparsifyTest, SparsifySampleAlignsPoints) {
  Dataset ds = test::MakeTinyDataset("XA", 10);
  Rng rng(6);
  TrajectorySample sample = ds.samples[0];
  SparsifySample(sample, 0.3, rng);
  ASSERT_EQ(sample.sparse.points.size(), sample.sparse_indices.size());
  for (size_t i = 0; i < sample.sparse_indices.size(); ++i) {
    const int idx = sample.sparse_indices[i];
    EXPECT_DOUBLE_EQ(sample.sparse.points[i].t, sample.raw.points[idx].t);
    EXPECT_EQ(sample.sparse.points[i].pos, sample.raw.points[idx].pos);
  }
}

}  // namespace
}  // namespace trmma
