#include <gtest/gtest.h>

#include "common/logging.h"

/// Shared gtest main: honors TRMMA_LOG_LEVEL so test runs can be made
/// chatty (debug) or quiet (error) without a rebuild.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  trmma::SetMinLogLevelFromEnv();
  return RUN_ALL_TESTS();
}
