#include <gtest/gtest.h>

#include "common/logging.h"

/// Shared gtest main: honors TRMMA_LOG_LEVEL so test runs can be made
/// chatty (debug) or quiet (error) without a rebuild, and TRMMA_LOG_FILE
/// to divert log lines away from the test output.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  trmma::SetMinLogLevelFromEnv();
  trmma::SetLogFileFromEnv();
  return RUN_ALL_TESTS();
}
