#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {
namespace {

/// Restores the process TraceMode on scope exit so tests can flip it freely.
class ModeGuard {
 public:
  explicit ModeGuard(TraceMode mode) : prev_(CurrentTraceMode()) {
    SetTraceMode(mode);
  }
  ~ModeGuard() { SetTraceMode(prev_); }

 private:
  TraceMode prev_;
};

// ---------------------------------------------------------------- registry

TEST(MetricRegistryTest, ReRegistrationIsIdempotent) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("requests");
  Counter* b = reg.GetCounter("requests");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->Value(), 3);
}

TEST(MetricRegistryTest, LabelOrderDoesNotSplitMetrics) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("hits", {{"city", "PT"}, {"kind", "knn"}});
  Counter* b = reg.GetCounter("hits", {{"kind", "knn"}, {"city", "PT"}});
  EXPECT_EQ(a, b);
  Counter* c = reg.GetCounter("hits", {{"city", "XA"}, {"kind", "knn"}});
  EXPECT_NE(a, c);
}

TEST(MetricRegistryTest, HistogramBoundsFixedByFirstRegistration) {
  MetricRegistry reg;
  Histogram* a = reg.GetHistogram("lat", {}, {1.0, 2.0, 3.0});
  Histogram* b = reg.GetHistogram("lat", {}, {10.0, 20.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(MetricRegistryTest, ResetZeroesButKeepsPointersValid) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("n");
  Gauge* g = reg.GetGauge("v");
  Histogram* h = reg.GetHistogram("t", {}, {1.0});
  c->Increment(7);
  g->Set(2.5);
  h->Observe(0.5);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0);
  EXPECT_EQ(h->Min(), 0.0);
  // Same objects are still registered.
  EXPECT_EQ(reg.GetCounter("n"), c);
  c->Increment();
  EXPECT_EQ(c->Value(), 1);
}

// --------------------------------------------------------------- histogram

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0: (-inf, 1]
  h.Observe(1.0);  // bucket 0 (boundary value goes to the lower bucket)
  h.Observe(1.5);  // bucket 1: (1, 2]
  h.Observe(4.0);  // bucket 2: (2, 4]
  h.Observe(9.0);  // bucket 3: overflow
  EXPECT_EQ(h.BucketCounts(), (std::vector<int64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.Count(), 5);
  EXPECT_DOUBLE_EQ(h.Sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 9.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.2);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleObservationPinsAllQuantiles) {
  Histogram h({10.0, 20.0});
  h.Observe(7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 7.0);
}

TEST(HistogramTest, QuantilesOfUniformDistribution) {
  // 1..100 against decade buckets: interpolation should land within one
  // bucket width of the exact order statistic.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.Observe(v);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
}

TEST(HistogramTest, QuantileClampedToObservedRange) {
  Histogram h({1000.0});
  h.Observe(3.0);
  h.Observe(5.0);
  // Both fall in the first bucket; min/max tighten its range to [3, 5].
  EXPECT_GE(h.Quantile(0.01), 3.0);
  EXPECT_LE(h.Quantile(0.99), 5.0);
}

TEST(HistogramTest, ExponentialBoundsGrowGeometrically) {
  const std::vector<double> b = Histogram::ExponentialBounds(1.0, 2.0, 4);
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

TEST(HistogramTest, NonFiniteObservationsAreDroppedAndCounted) {
  Histogram h({1.0, 2.0});
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.DroppedCount(), 3);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  // A finite observation after the garbage still lands normally, and
  // min/max are untouched by the dropped values.
  h.Observe(1.5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_DOUBLE_EQ(h.Min(), 1.5);
  EXPECT_DOUBLE_EQ(h.Max(), 1.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1.5);
}

TEST(HistogramTest, ResetClearsEverythingIncludingDropped) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.DroppedCount(), 1);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.DroppedCount(), 0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  // The histogram is fully reusable after Reset.
  h.Observe(1.5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.5);
}

TEST(HistogramTest, QuantileInterpolatesInsideBuckets) {
  // 10 observations in one bucket whose range is tightened to [10, 20] by
  // min/max: interior quantiles must move smoothly through the bucket
  // rather than snapping to a boundary.
  Histogram h({100.0});
  for (int v = 10; v <= 20; v += 10) h.Observe(v);  // min 10, max 20
  for (int i = 0; i < 8; ++i) h.Observe(15.0);
  const double p25 = h.Quantile(0.25);
  const double p75 = h.Quantile(0.75);
  EXPECT_GT(p25, 10.0);
  EXPECT_LT(p25, p75);
  EXPECT_LT(p75, 20.0);
}

TEST(HistogramTest, QuantileAtExactBucketBoundary) {
  // 50 observations below the first bound, 50 above: q = 0.5 lands exactly
  // on the cumulative boundary and must report a value from the first
  // bucket's range, never beyond it.
  Histogram h({50.0, 100.0});
  for (int v = 1; v <= 100; ++v) h.Observe(v);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 50.0);
}

TEST(HistogramTest, QuantileArgumentOutsideUnitIntervalIsClamped) {
  Histogram h({10.0, 20.0});
  h.Observe(4.0);
  h.Observe(16.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), 16.0);
}

TEST(HistogramTest, NanQuantileArgumentDoesNotReturnMax) {
  // NaN passes through std::clamp unscathed; without the explicit guard
  // every rank comparison is false and Quantile would fall through to max.
  Histogram h({10.0, 20.0});
  h.Observe(4.0);
  h.Observe(16.0);
  const double q = h.Quantile(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(std::isnan(q));
  EXPECT_DOUBLE_EQ(q, 4.0);
}

TEST(HistogramTest, QuantileInOverflowBucketUsesObservedMax) {
  // All mass above the last bound: the overflow bucket has no upper bound,
  // so interpolation must be capped by the observed max.
  Histogram h({1.0});
  h.Observe(100.0);
  h.Observe(200.0);
  EXPECT_GE(h.Quantile(0.5), 100.0);
  EXPECT_LE(h.Quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 200.0);
}

TEST(HistogramTest, QuantileSeesConsistentMinMaxSnapshot) {
  // Quantile snapshots min/max once; if a concurrent Reset leaves the
  // sentinels (min=+inf > max=-inf), it must return 0 rather than a
  // half-reset garbage interpolation. Exercised here single-threaded by
  // interleaving Observe/Reset around Quantile.
  Histogram h({10.0, 20.0});
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Observe(7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 7.0);
}

// ------------------------------------------------------------------ merge

TEST(HistogramMergeTest, CombinesCountsSumsAndExtremes) {
  Histogram a({1.0, 2.0, 4.0});
  Histogram b({1.0, 2.0, 4.0});
  a.Observe(0.5);
  a.Observe(3.0);
  b.Observe(1.5);
  b.Observe(9.0);
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.Count(), 4);
  EXPECT_DOUBLE_EQ(a.Sum(), 14.0);
  EXPECT_DOUBLE_EQ(a.Min(), 0.5);
  EXPECT_DOUBLE_EQ(a.Max(), 9.0);
  EXPECT_EQ(a.BucketCounts(), (std::vector<int64_t>{1, 1, 1, 1}));
  // `b` is untouched by the merge.
  EXPECT_EQ(b.Count(), 2);
}

TEST(HistogramMergeTest, MismatchedBoundsRejectedAndTargetUntouched) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  a.Observe(0.5);
  b.Observe(0.5);
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.Count(), 1);
  EXPECT_DOUBLE_EQ(a.Sum(), 0.5);
}

TEST(HistogramMergeTest, EmptySourceIsANoOp) {
  Histogram a({1.0, 2.0});
  Histogram empty({1.0, 2.0});
  a.Observe(1.5);
  ASSERT_TRUE(a.Merge(empty));
  EXPECT_EQ(a.Count(), 1);
  // The empty histogram's min/max sentinels must not widen a's range.
  EXPECT_DOUBLE_EQ(a.Min(), 1.5);
  EXPECT_DOUBLE_EQ(a.Max(), 1.5);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 1.5);
}

TEST(HistogramMergeTest, MergeIntoEmptyAdoptsSourceState) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  b.Observe(0.5);
  b.Observe(1.5);
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.Count(), 2);
  EXPECT_DOUBLE_EQ(a.Min(), 0.5);
  EXPECT_DOUBLE_EQ(a.Max(), 1.5);
}

TEST(HistogramMergeTest, DroppedCountPropagates) {
  Histogram a({1.0});
  Histogram b({1.0});
  b.Observe(std::numeric_limits<double>::quiet_NaN());
  b.Observe(std::numeric_limits<double>::infinity());
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.Count(), 0);
  EXPECT_EQ(a.DroppedCount(), 2);
}

TEST(HistogramMergeTest, NonFiniteSourceSumDoesNotPoisonTarget) {
  // Two finite observations can still overflow the running sum to +inf;
  // merging such a histogram must keep the counts but skip the sum.
  Histogram a({1.0});
  Histogram b({1.0});
  a.Observe(1.0);
  b.Observe(1.7e308);
  b.Observe(1.7e308);
  ASSERT_FALSE(std::isfinite(b.Sum()));
  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.Count(), 3);
  EXPECT_TRUE(std::isfinite(a.Sum()));
  EXPECT_DOUBLE_EQ(a.Sum(), 1.0);
}

TEST(HistogramMergeTest, SelfMergeDoublesCleanly) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  ASSERT_TRUE(h.Merge(h));
  EXPECT_EQ(h.Count(), 4);
  EXPECT_EQ(h.BucketCounts(), (std::vector<int64_t>{2, 2, 0}));
  EXPECT_DOUBLE_EQ(h.Sum(), 4.0);
}

// ------------------------------------------------------------- exemplars

/// Forces exemplar capture on for the test body, restoring the previous
/// switch (which may have come from TRMMA_EXEMPLARS) on scope exit.
class ExemplarGuard {
 public:
  ExemplarGuard() : prev_(ExemplarsEnabled()) { SetExemplarsEnabled(true); }
  ~ExemplarGuard() { SetExemplarsEnabled(prev_); }

 private:
  bool prev_;
};

TEST(HistogramExemplarTest, ObserveWithTraceIdCapturesExemplar) {
  ExemplarGuard guard;
  Histogram h;
  HistogramExemplar ex;
  EXPECT_FALSE(h.WorstExemplar(&ex)) << "no capture before any observation";
  h.Observe(5.0, 0xabcu);
  ASSERT_TRUE(h.WorstExemplar(&ex));
  EXPECT_DOUBLE_EQ(ex.value, 5.0);
  EXPECT_EQ(ex.trace_id, 0xabcu);
}

TEST(HistogramExemplarTest, WorstExemplarPicksLargestRecentValue) {
  ExemplarGuard guard;
  Histogram h;
  h.Observe(1.0, 1);
  h.Observe(9.0, 2);
  h.Observe(3.0, 3);
  HistogramExemplar ex;
  ASSERT_TRUE(h.WorstExemplar(&ex));
  EXPECT_DOUBLE_EQ(ex.value, 9.0);
  EXPECT_EQ(ex.trace_id, 2u);
  // The ring holds the 4 most recent exemplars: once the 9.0 capture
  // rotates out, "worst" tracks the new window, not the all-time max.
  for (uint64_t i = 0; i < 4; ++i) h.Observe(2.0, 100 + i);
  ASSERT_TRUE(h.WorstExemplar(&ex));
  EXPECT_DOUBLE_EQ(ex.value, 2.0);
}

TEST(HistogramExemplarTest, ZeroTraceIdLeavesNoExemplar) {
  ExemplarGuard guard;
  Histogram h;
  h.Observe(7.0, /*exemplar_trace_id=*/0);
  h.Observe(8.0);
  HistogramExemplar ex;
  EXPECT_FALSE(h.WorstExemplar(&ex));
  EXPECT_EQ(h.Count(), 2) << "observations still land without a trace";
}

TEST(HistogramExemplarTest, ResetDropsRetainedExemplars) {
  ExemplarGuard guard;
  Histogram h;
  h.Observe(5.0, 7);
  h.Reset();
  HistogramExemplar ex;
  EXPECT_FALSE(h.WorstExemplar(&ex)) << "pre-reset trace ids must not leak";
  h.Observe(6.0, 8);
  ASSERT_TRUE(h.WorstExemplar(&ex));
  EXPECT_EQ(ex.trace_id, 8u);
}

TEST(HistogramExemplarTest, DisabledSwitchSkipsCaptureNotObservation) {
  ExemplarGuard guard;
  SetExemplarsEnabled(false);
  Histogram h;
  h.Observe(5.0, 42);
  HistogramExemplar ex;
  EXPECT_FALSE(h.WorstExemplar(&ex));
  EXPECT_EQ(h.Count(), 1);
}

TEST(MetricRegistryTest, WorstExemplarByNameSpansLabelSets) {
  ExemplarGuard guard;
  MetricRegistry reg;
  reg.GetHistogram("lat.us", {{"city", "PT"}})->Observe(5.0, 1);
  reg.GetHistogram("lat.us", {{"city", "XA"}})->Observe(9.0, 2);
  HistogramExemplar ex;
  ASSERT_TRUE(reg.WorstExemplarByName("lat.us", &ex));
  EXPECT_EQ(ex.trace_id, 2u);
  EXPECT_DOUBLE_EQ(ex.value, 9.0);
  EXPECT_FALSE(reg.WorstExemplarByName("no.such.metric", &ex));
}

TEST(JsonExporterTest, WriteTextAttachesExemplarToP99LineOnly) {
  ExemplarGuard guard;
  MetricRegistry reg;
  reg.GetHistogram("lat.us", {}, {1.0})->Observe(0.5, 0x2a);
  const std::string text = reg.WriteText();
  // Exactly one OpenMetrics exemplar, and it rides the p99 sample.
  const std::string suffix = " # {trace_id=\"000000000000002a\"} 0.5";
  EXPECT_NE(text.find("lat_us{quantile=\"0.99\"} 0.5" + suffix),
            std::string::npos);
  EXPECT_EQ(text.find(" # {"), text.rfind(" # {"));
  EXPECT_EQ(text.find("quantile=\"0.5\"} 0.5" + suffix), std::string::npos);
}

TEST(JsonExporterTest, WriteTextOmitsExemplarWhenDisabled) {
  ExemplarGuard guard;
  MetricRegistry reg;
  reg.GetHistogram("lat.us", {}, {1.0})->Observe(0.5, 0x2a);  // captured
  SetExemplarsEnabled(false);  // emission gated independently of capture
  const std::string text = reg.WriteText();
  EXPECT_EQ(text.find(" # {"), std::string::npos);
  EXPECT_NE(text.find("lat_us{quantile=\"0.99\"} 0.5"), std::string::npos);
}

// ----------------------------------------------------- exposition hygiene

TEST(JsonExporterTest, WriteTextEscapesLabelValues) {
  MetricRegistry reg;
  reg.GetCounter("esc", {{"path", "a\\b\"c\nd"}})->Increment(1);
  const std::string text = reg.WriteText();
  // Exposition 0.0.4: backslash, double quote and newline must be escaped
  // inside label values — a raw newline would split the sample line.
  EXPECT_NE(text.find("esc{path=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos);
  // The raw newline must never reach the output.
  EXPECT_EQ(text.find("c\nd"), std::string::npos);
}

TEST(JsonExporterTest, WriteTextEmitsFamilyHeadersOncePerFamily) {
  MetricRegistry reg;
  reg.GetCounter("hits", {{"city", "PT"}})->Increment(1);
  reg.GetCounter("hits", {{"city", "XA"}})->Increment(2);
  reg.GetHistogram("lat.us", {{"city", "PT"}}, {1.0})->Observe(0.5);
  reg.GetHistogram("lat.us", {{"city", "XA"}}, {1.0})->Observe(0.5);
  const std::string text = reg.WriteText();
  auto count_of = [&text](const std::string& needle) {
    int n = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  // One HELP + one TYPE per family even with several label sets.
  EXPECT_EQ(count_of("# TYPE hits counter"), 1);
  EXPECT_EQ(count_of("# HELP hits "), 1);
  EXPECT_EQ(count_of("# TYPE lat_us summary"), 1);
  EXPECT_EQ(count_of("# HELP lat_us "), 1);
  // Both label sets still export their samples.
  EXPECT_EQ(count_of("hits{city=\"PT\"} 1"), 1);
  EXPECT_EQ(count_of("hits{city=\"XA\"} 2"), 1);
  EXPECT_EQ(count_of("lat_us_count{city=\"PT\"} 1"), 1);
  EXPECT_EQ(count_of("lat_us_count{city=\"XA\"} 1"), 1);
  // No header is ever emitted mid-family: every TYPE line directly follows
  // its HELP line.
  size_t type_pos = text.find("# TYPE hits counter");
  size_t help_pos = text.find("# HELP hits ");
  ASSERT_NE(type_pos, std::string::npos);
  ASSERT_NE(help_pos, std::string::npos);
  EXPECT_LT(help_pos, type_pos);
}

// ------------------------------------------------------------------ spans

TEST(TraceTest, SpanNestingRecordedInRing) {
  ModeGuard guard(TraceMode::kTrace);
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  {
    TRMMA_SPAN("obs_test.outer");
    {
      TRMMA_SPAN("obs_test.inner");
    }
  }
  const std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner finishes first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_STREQ(inner.name, "obs_test.inner");
  EXPECT_STREQ(outer.name, "obs_test.outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.parent_seq, -1);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.parent_seq, outer.seq);
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.duration_us, outer.duration_us);

  // DumpString re-sorts by start order: outer line precedes inner line.
  const std::string dump = ring.DumpString();
  const size_t outer_pos = dump.find("obs_test.outer");
  const size_t inner_pos = dump.find("obs_test.inner");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  ring.Clear();
}

TEST(TraceTest, RingKeepsOnlyMostRecentSpans) {
  ModeGuard guard(TraceMode::kTrace);
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord rec;
    rec.name = "r";
    rec.seq = i;
    ring.Record(rec);
  }
  const std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().seq, 6);
  EXPECT_EQ(spans.back().seq, 9);
}

TEST(TraceTest, SpanFeedsHistogramUnderMetricsMode) {
  ModeGuard guard(TraceMode::kMetrics);
  Histogram* h = MetricRegistry::Global().GetHistogram("obs_test.span.us");
  const int64_t before = h->Count();
  {
    TRMMA_SPAN("obs_test.span");
  }
  EXPECT_EQ(h->Count(), before + 1);
}

TEST(TraceTest, SpanIsInertWhenOff) {
  ModeGuard guard(TraceMode::kOff);
  TraceRing& ring = TraceRing::Global();
  ring.Clear();
  Histogram* h = MetricRegistry::Global().GetHistogram("obs_test.off.us");
  const int64_t before = h->Count();
  {
    TRMMA_SPAN("obs_test.off");
  }
  EXPECT_EQ(h->Count(), before);
  EXPECT_TRUE(ring.Snapshot().empty());
}

// ------------------------------------------------------------------- JSON

TEST(JsonWriterTest, EscapesAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\nd");
  w.Key("arr").BeginArray().Int(1).Int(2).EndArray();
  w.Key("nan").Number(std::nan(""));
  w.Key("t").Bool(true);
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,2],\"nan\":0,\"t\":true}");
}

TEST(JsonExporterTest, GoldenRegistryDump) {
  MetricRegistry reg;
  reg.GetCounter("c", {{"city", "PT"}})->Increment(3);
  reg.GetGauge("g")->Set(2.5);
  Histogram* h = reg.GetHistogram("h", {}, {1.0, 2.0});
  h->Observe(1.5);
  const std::string expected =
      "{\"counters\":[{\"name\":\"c\",\"labels\":{\"city\":\"PT\"},"
      "\"value\":3}],"
      "\"gauges\":[{\"name\":\"g\",\"labels\":{},\"value\":2.5}],"
      "\"histograms\":[{\"name\":\"h\",\"labels\":{},\"count\":1,"
      "\"sum\":1.5,\"min\":1.5,\"max\":1.5,\"mean\":1.5,"
      "\"p50\":1.5,\"p95\":1.5,\"p99\":1.5}]}";
  EXPECT_EQ(reg.JsonDump(), expected);
}

TEST(JsonExporterTest, TextDumpListsEveryMetric) {
  MetricRegistry reg;
  reg.GetCounter("reqs", {{"m", "hmm"}})->Increment(5);
  reg.GetGauge("loss")->Set(0.25);
  reg.GetHistogram("lat.us", {}, {1.0})->Observe(0.5);
  const std::string text = reg.TextDump();
  EXPECT_NE(text.find("counter reqs{m=hmm} 5"), std::string::npos);
  EXPECT_NE(text.find("gauge loss 0.25"), std::string::npos);
  EXPECT_NE(text.find("histogram lat.us count=1"), std::string::npos);
}

TEST(JsonExporterTest, WriteTextEmitsPrometheusExposition) {
  MetricRegistry reg;
  reg.GetCounter("mm.candidates", {{"city", "PT"}})->Increment(7);
  reg.GetGauge("train.loss")->Set(0.5);
  Histogram* h = reg.GetHistogram("span.us", {}, {1.0, 10.0});
  h->Observe(2.0);
  h->Observe(4.0);
  const std::string text = reg.WriteText();
  // Dots are sanitized to underscores; every family gets a TYPE header.
  EXPECT_NE(text.find("# TYPE mm_candidates counter"), std::string::npos);
  EXPECT_NE(text.find("mm_candidates{city=\"PT\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE train_loss gauge"), std::string::npos);
  EXPECT_NE(text.find("train_loss 0.5"), std::string::npos);
  // Histograms export as summaries: quantile series plus _sum/_count.
  EXPECT_NE(text.find("# TYPE span_us summary"), std::string::npos);
  EXPECT_NE(text.find("span_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("span_us{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("span_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("span_us_sum 6"), std::string::npos);
  EXPECT_NE(text.find("span_us_count 2"), std::string::npos);
  // Exposition format requires a trailing newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(JsonExporterTest, WriteTextMergesQuantileLabelsWithExisting) {
  MetricRegistry reg;
  reg.GetHistogram("lat.us", {{"city", "XA"}}, {1.0})->Observe(0.5);
  const std::string text = reg.WriteText();
  EXPECT_NE(text.find("lat_us{city=\"XA\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_count{city=\"XA\"} 1"), std::string::npos);
}

// ----------------------------------------------------------------- report

TEST(RunReportTest, WriteFileEmitsNamedJson) {
  RunReport report;
  report.SetName("obs_unit");
  report.AddPhaseSeconds("train", 1.5);
  report.AddPhaseSeconds("train", 0.5);
  report.SetFingerprint("scale", "quick");
  report.SetFingerprintNumber("seed", 42);

  auto path_or = report.WriteFile(::testing::TempDir());
  ASSERT_TRUE(path_or.ok()) << path_or.status().ToString();
  const std::string path = path_or.value();
  EXPECT_NE(path.find("BENCH_obs_unit.json"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("\"name\":\"obs_unit\""), std::string::npos);
  EXPECT_NE(body.find("\"scale\":\"quick\""), std::string::npos);
  EXPECT_NE(body.find("\"seed\":42"), std::string::npos);
  // Two AddPhaseSeconds calls accumulate into one phase entry.
  EXPECT_NE(body.find("\"name\":\"train\",\"seconds\":2"), std::string::npos);
  EXPECT_NE(body.find("\"count\":2"), std::string::npos);
  EXPECT_NE(body.find("\"metrics\":{"), std::string::npos);
  // Structural sanity: braces and brackets balance (outside strings there
  // are no escapes to worry about; keys/values here contain none).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '"' && (i == 0 || body[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(path.c_str());
}

TEST(RunReportTest, ScopedPhaseAccumulatesIntoGlobalReport) {
  RunReport& report = RunReport::Global();
  report.Reset();
  {
    ScopedPhase phase("obs_test.phase");
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1;
  }
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"name\":\"obs_test.phase\""), std::string::npos);
  report.Reset();
}

// ---------------------------------------------------------------- logging

TEST(LoggingTest, SetMinLogLevelFromEnvParsesLevels) {
  const LogLevel original = internal_logging::MinLogLevel();
  ::setenv("TRMMA_LOG_LEVEL", "error", 1);
  SetMinLogLevelFromEnv();
  EXPECT_EQ(internal_logging::MinLogLevel(), LogLevel::kError);
  ::setenv("TRMMA_LOG_LEVEL", "DEBUG", 1);
  SetMinLogLevelFromEnv();
  EXPECT_EQ(internal_logging::MinLogLevel(), LogLevel::kDebug);
  ::setenv("TRMMA_LOG_LEVEL", "not-a-level", 1);
  SetMinLogLevelFromEnv();
  EXPECT_EQ(internal_logging::MinLogLevel(), LogLevel::kDebug);
  ::unsetenv("TRMMA_LOG_LEVEL");
  SetMinLogLevel(original);
}

TEST(LoggingTest, SetLogFileDivertsAndRestores) {
  const std::string path = std::string(::testing::TempDir()) +
                           "/trmma_log_file_test.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path));
  TRMMA_LOG(Warning) << "diverted-line-marker";
  ASSERT_TRUE(SetLogFile(""));  // back to stderr, flushes/closes the file
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("diverted-line-marker"), std::string::npos);
  // Appends across re-opens (mirrors TRMMA_METRICS_FILE semantics).
  ASSERT_TRUE(SetLogFile(path));
  TRMMA_LOG(Warning) << "second-marker";
  ASSERT_TRUE(SetLogFile(""));
  std::ifstream in2(path);
  std::string contents2((std::istreambuf_iterator<char>(in2)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(contents2.find("diverted-line-marker"), std::string::npos);
  EXPECT_NE(contents2.find("second-marker"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoggingTest, SetLogFileFailureFallsBackToStderr) {
  EXPECT_FALSE(SetLogFile("/nonexistent-dir-for-trmma/log.txt"));
  // Logging still works (to stderr) after the failed open.
  TRMMA_LOG(Error) << "still-alive-after-failed-open";
  SetLogFile("");
}

TEST(LoggingTest, SetLogFileFromEnvAppliesVariable) {
  const std::string path = std::string(::testing::TempDir()) +
                           "/trmma_log_env_test.log";
  std::remove(path.c_str());
  ::setenv("TRMMA_LOG_FILE", path.c_str(), 1);
  SetLogFileFromEnv();
  TRMMA_LOG(Warning) << "env-marker";
  ::unsetenv("TRMMA_LOG_FILE");
  SetLogFile("");
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("env-marker"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace trmma
