#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "graph/spatial_index.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

/// Brute-force reference for KNearest.
std::vector<SegmentHit> BruteKnn(const RoadNetwork& g, const Vec2& q, int k) {
  std::vector<SegmentHit> all;
  for (SegmentId i = 0; i < g.num_segments(); ++i) {
    const auto proj = g.ProjectOnto(i, q);
    all.push_back({i, proj.distance, proj.ratio});
  }
  std::sort(all.begin(), all.end(), [](const SegmentHit& a, const SegmentHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.segment < b.segment;
  });
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

TEST(SegmentRTreeTest, SingleNearestOnGrid) {
  auto g = test::MakeGrid(4, 4, 100.0);
  ASSERT_NE(g, nullptr);
  SegmentRTree tree(*g);
  // A point 10m above the middle of the segment from (0,0) to (1,0).
  Vec2 q = g->PointOnSegment(0, 0.5);
  q.y += 10.0;
  auto hits = tree.KNearest(q, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0].distance, 10.0, 0.6);
}

TEST(SegmentRTreeTest, KLargerThanSegmentCountReturnsAll) {
  auto g = test::MakeGrid(2, 2, 100.0);
  ASSERT_NE(g, nullptr);
  SegmentRTree tree(*g);
  auto hits = tree.KNearest({0, 0}, 100);
  EXPECT_EQ(static_cast<int>(hits.size()), g->num_segments());
}

TEST(SegmentRTreeTest, ResultsSortedByDistance) {
  auto g = test::MakeCityNetwork();
  ASSERT_NE(g, nullptr);
  SegmentRTree tree(*g);
  auto hits = tree.KNearest({120.0, 80.0}, 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance + 1e-12);
  }
}

/// Property: R-tree kNN equals brute force, across tree shapes and seeds.
class RTreeVsBruteTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RTreeVsBruteTest, MatchesBruteForce) {
  const int leaf_capacity = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = test::MakeCityNetwork(seed);
  ASSERT_NE(g, nullptr);
  SegmentRTree tree(*g, leaf_capacity);
  Rng rng(seed * 7 + 1);
  for (int trial = 0; trial < 25; ++trial) {
    Vec2 q{rng.Uniform(-200, 1200), rng.Uniform(-200, 900)};
    for (int k : {1, 5, 10}) {
      auto fast = tree.KNearest(q, k);
      auto slow = BruteKnn(*g, q, k);
      ASSERT_EQ(fast.size(), slow.size());
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast[i].distance, slow[i].distance, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RTreeVsBruteTest,
    testing::Combine(testing::Values(2, 4, 16, 64), testing::Values(3, 4, 5)));

TEST(SegmentRTreeTest, WithinRadiusMatchesBruteForce) {
  auto g = test::MakeCityNetwork(9);
  ASSERT_NE(g, nullptr);
  SegmentRTree tree(*g);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Vec2 q{rng.Uniform(0, 900), rng.Uniform(0, 700)};
    const double radius = rng.Uniform(20, 300);
    auto hits = tree.WithinRadius(q, radius);
    // Every hit within radius, sorted.
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_LE(hits[i].distance, radius);
      if (i > 0) EXPECT_LE(hits[i - 1].distance, hits[i].distance + 1e-12);
    }
    // Count matches brute force.
    int expected = 0;
    for (SegmentId s = 0; s < g->num_segments(); ++s) {
      if (g->ProjectOnto(s, q).distance <= radius) ++expected;
    }
    EXPECT_EQ(static_cast<int>(hits.size()), expected);
  }
}

TEST(SegmentRTreeTest, HeightGrowsWithNetwork) {
  auto small = test::MakeGrid(2, 2);
  auto large = test::MakeGrid(20, 20);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(large, nullptr);
  SegmentRTree t_small(*small, 4);
  SegmentRTree t_large(*large, 4);
  EXPECT_GE(t_large.height(), t_small.height());
  EXPECT_GE(t_large.height(), 3);
}

TEST(SegmentRTreeTest, ZeroKReturnsEmpty) {
  auto g = test::MakeGrid(2, 2);
  ASSERT_NE(g, nullptr);
  SegmentRTree tree(*g);
  EXPECT_TRUE(tree.KNearest({0, 0}, 0).empty());
}

}  // namespace
}  // namespace trmma
