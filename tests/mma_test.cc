#include <gtest/gtest.h>

#include <cstdio>

#include "mm/deep_mm_lite.h"
#include "mm/mma.h"
#include "mm/nearest.h"
#include "node2vec/node2vec.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

class MmaFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::MakeTinyDataset("XA", 150));
    index_ = new SegmentRTree(*dataset_->network);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
  }

  static double PointAccuracy(MapMatcher& matcher, int max_samples = 30) {
    int64_t total = 0;
    int64_t ok = 0;
    int count = 0;
    for (int idx : dataset_->test_idx) {
      if (count++ >= max_samples) break;
      const auto& sample = dataset_->samples[idx];
      auto segs = matcher.MatchPoints(sample.sparse);
      for (size_t i = 0; i < segs.size(); ++i) {
        ok += segs[i] == sample.truth[sample.sparse_indices[i]].segment;
        ++total;
      }
    }
    return static_cast<double>(ok) / total;
  }

  static MmaConfig SmallConfig() {
    MmaConfig config;
    config.d0 = 16;
    config.d1 = 32;
    config.d2 = 16;
    config.d3 = 32;
    config.trans_ffn = 32;
    return config;
  }

  static Dataset* dataset_;
  static SegmentRTree* index_;
};

Dataset* MmaFixture::dataset_ = nullptr;
SegmentRTree* MmaFixture::index_ = nullptr;

TEST_F(MmaFixture, MatchesEveryPointToACandidate) {
  MmaMatcher mma(*dataset_->network, *index_, SmallConfig());
  const auto& sample = dataset_->samples[0];
  auto segs = mma.MatchPoints(sample.sparse);
  ASSERT_EQ(segs.size(), static_cast<size_t>(sample.sparse.size()));
  for (SegmentId s : segs) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, dataset_->network->num_segments());
  }
}

TEST_F(MmaFixture, TrainingReducesLoss) {
  MmaMatcher mma(*dataset_->network, *index_, SmallConfig());
  Rng rng(1);
  const double first = mma.TrainEpoch(*dataset_, rng);
  double last = first;
  for (int e = 0; e < 3; ++e) last = mma.TrainEpoch(*dataset_, rng);
  EXPECT_LT(last, first);
}

TEST_F(MmaFixture, TrainingBeatsNearestBaseline) {
  MmaMatcher mma(*dataset_->network, *index_, SmallConfig());
  Rng rng(2);
  for (int e = 0; e < 5; ++e) mma.TrainEpoch(*dataset_, rng);
  NearestMatcher nearest(*dataset_->network, *index_);
  EXPECT_GT(PointAccuracy(mma), PointAccuracy(nearest) + 0.03);
}

TEST_F(MmaFixture, ScoresAreProbabilities) {
  MmaMatcher mma(*dataset_->network, *index_, SmallConfig());
  Rng rng(3);
  mma.TrainEpoch(*dataset_, rng);
  std::vector<double> scores;
  mma.MatchPointsWithScores(dataset_->samples[0].sparse, &scores);
  ASSERT_EQ(scores.size(),
            static_cast<size_t>(dataset_->samples[0].sparse.size()));
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(MmaFixture, PretrainedEmbeddingsLoadable) {
  MmaConfig config = SmallConfig();
  MmaMatcher mma(*dataset_->network, *index_, config);
  Node2VecConfig n2v;
  n2v.dim = config.d0;
  n2v.epochs = 1;
  n2v.walks_per_node = 2;
  Rng rng(4);
  nn::Matrix table = TrainNode2Vec(*dataset_->network, n2v, rng);
  mma.LoadPretrainedSegmentEmbeddings(table);  // must not crash / mismatch
  auto segs = mma.MatchPoints(dataset_->samples[0].sparse);
  EXPECT_FALSE(segs.empty());
}

TEST_F(MmaFixture, AblationConfigsRun) {
  MmaConfig no_ctx = SmallConfig();
  no_ctx.use_candidate_context = false;  // TRMMA-C
  MmaConfig no_dir = SmallConfig();
  no_dir.use_directional = false;  // TRMMA-DI
  for (MmaConfig* config : {&no_ctx, &no_dir}) {
    MmaMatcher mma(*dataset_->network, *index_, *config);
    Rng rng(5);
    const double loss = mma.TrainEpoch(*dataset_, rng);
    EXPECT_GT(loss, 0.0);
    auto segs = mma.MatchPoints(dataset_->samples[0].sparse);
    EXPECT_EQ(segs.size(),
              static_cast<size_t>(dataset_->samples[0].sparse.size()));
  }
}

TEST_F(MmaFixture, DirectionalFeaturesHelp) {
  MmaConfig with = SmallConfig();
  MmaConfig without = SmallConfig();
  without.use_directional = false;
  MmaMatcher mma_with(*dataset_->network, *index_, with);
  MmaMatcher mma_without(*dataset_->network, *index_, without);
  Rng rng1(6);
  Rng rng2(6);
  for (int e = 0; e < 5; ++e) {
    mma_with.TrainEpoch(*dataset_, rng1);
    mma_without.TrainEpoch(*dataset_, rng2);
  }
  // Directional features should not hurt (usually help).
  EXPECT_GE(PointAccuracy(mma_with) + 0.03, PointAccuracy(mma_without));
}

TEST_F(MmaFixture, DeterministicInference) {
  MmaMatcher mma(*dataset_->network, *index_, SmallConfig());
  Rng rng(7);
  mma.TrainEpoch(*dataset_, rng);
  auto a = mma.MatchPoints(dataset_->samples[0].sparse);
  auto b = mma.MatchPoints(dataset_->samples[0].sparse);
  EXPECT_EQ(a, b);
}

TEST_F(MmaFixture, CheckpointRoundTrip) {
  MmaMatcher trained(*dataset_->network, *index_, SmallConfig());
  Rng rng(99);
  for (int e = 0; e < 3; ++e) trained.TrainEpoch(*dataset_, rng);
  const std::string path = testing::TempDir() + "/mma_ckpt.bin";
  ASSERT_TRUE(trained.Save(path).ok());

  MmaMatcher restored(*dataset_->network, *index_, SmallConfig());
  ASSERT_TRUE(restored.Load(path).ok());
  const auto& sparse = dataset_->samples[0].sparse;
  EXPECT_EQ(trained.MatchPoints(sparse), restored.MatchPoints(sparse));
  std::remove(path.c_str());
}

TEST_F(MmaFixture, CheckpointConfigMismatchFails) {
  MmaMatcher a(*dataset_->network, *index_, SmallConfig());
  const std::string path = testing::TempDir() + "/mma_ckpt_bad.bin";
  ASSERT_TRUE(a.Save(path).ok());
  MmaConfig bigger = SmallConfig();
  bigger.d2 = 24;
  MmaMatcher b(*dataset_->network, *index_, bigger);
  EXPECT_FALSE(b.Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(MmaFixture, DeepMmLiteTrainsAndMatches) {
  DeepMmConfig config;
  config.hidden_dim = 16;
  DeepMmLiteMatcher deepmm(*dataset_->network, config);
  Rng rng(8);
  const double first = deepmm.TrainEpoch(*dataset_, rng);
  double last = first;
  for (int e = 0; e < 4; ++e) last = deepmm.TrainEpoch(*dataset_, rng);
  EXPECT_LT(last, first);
  auto segs = deepmm.MatchPoints(dataset_->samples[0].sparse);
  EXPECT_EQ(segs.size(),
            static_cast<size_t>(dataset_->samples[0].sparse.size()));
}

}  // namespace
}  // namespace trmma
