#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace trmma {
namespace nn {
namespace {

namespace ops = nn::ops;

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize sum((x - 3)^2) over a 1x4 parameter.
  Param p("p", Matrix(1, 4, 10.0));
  Adam adam({&p}, /*lr=*/0.1);
  for (int step = 0; step < 400; ++step) {
    Tape tape;
    Tensor x = ops::FromParam(tape, p);
    Matrix target(1, 4, 3.0);
    Tensor diff = ops::Sub(x, ops::Input(tape, std::move(target)));
    Tensor loss = ops::SumAll(ops::Mul(diff, diff));
    tape.Backward(loss);
    adam.Step(/*max_grad_norm=*/0.0);
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(p.value.at(0, c), 3.0, 0.05);
  }
}

TEST(AdamTest, StepClearsGradients) {
  Param p("p", Matrix(1, 2, 1.0));
  Adam adam({&p}, 0.01);
  p.grad.Fill(5.0);
  adam.Step();
  EXPECT_DOUBLE_EQ(p.grad.Sum(), 0.0);
}

TEST(AdamTest, GradientClippingBoundsUpdate) {
  Param p("p", Matrix(1, 1, 0.0));
  Adam adam({&p}, 1.0);
  p.grad.at(0, 0) = 1e9;
  adam.Step(/*max_grad_norm=*/1.0);
  // First Adam step size is ~lr regardless, but must be finite and sane.
  EXPECT_TRUE(std::isfinite(p.value.at(0, 0)));
  EXPECT_LT(std::abs(p.value.at(0, 0)), 1.5);
}

TEST(AdamTest, CountsSteps) {
  Param p("p", Matrix(1, 1));
  Adam adam({&p}, 0.001);
  EXPECT_EQ(adam.num_steps(), 0);
  adam.Step();
  adam.Step();
  EXPECT_EQ(adam.num_steps(), 2);
}

TEST(AdamTest, LearningRateMutable) {
  Param p("p", Matrix(1, 1));
  Adam adam({&p}, 0.01);
  adam.set_lr(0.001);
  EXPECT_DOUBLE_EQ(adam.lr(), 0.001);
}

TEST(AdamTest, TrainsLinearRegression) {
  // y = x * W_true; recover W from noisy data.
  Rng rng(5);
  Matrix w_true(3, 1);
  w_true.at(0, 0) = 1.5;
  w_true.at(1, 0) = -2.0;
  w_true.at(2, 0) = 0.5;

  Linear model(3, 1, rng);
  Adam adam(model.Parameters(), 0.05);
  for (int step = 0; step < 500; ++step) {
    Matrix x(8, 3);
    for (int i = 0; i < x.size(); ++i) x.data()[i] = rng.Uniform(-1, 1);
    Matrix y;
    MatMul(x, w_true, &y);
    Tape tape;
    Tensor pred = model.Forward(ops::Input(tape, std::move(x)));
    Tensor diff = ops::Sub(pred, ops::Input(tape, std::move(y)));
    Tensor loss = ops::SumAll(ops::Mul(diff, diff));
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(model.weight().value.at(0, 0), 1.5, 0.05);
  EXPECT_NEAR(model.weight().value.at(1, 0), -2.0, 0.05);
  EXPECT_NEAR(model.bias().value.at(0, 0), 0.0, 0.05);
}

TEST(XavierInitTest, WithinLimit) {
  Rng rng(7);
  Matrix m = XavierUniform(10, 20, rng);
  const double limit = std::sqrt(6.0 / 30.0);
  double max_abs = 0.0;
  for (int i = 0; i < m.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(m.data()[i]));
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_GT(max_abs, limit * 0.5);  // actually spread out
}

}  // namespace
}  // namespace nn
}  // namespace trmma
