#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/cpu_profiler.h"
#include "obs/hw_counters.h"
#include "obs/json_parse.h"

namespace trmma {
namespace obs {
namespace {

// The subsystem is process-wide; every test leaves it disarmed and clean.
class HwGuard {
 public:
  HwGuard() { HwCounters::Global().ResetForTest(); }
  ~HwGuard() {
    HwCounters::Global().ResetForTest();
    unsetenv("TRMMA_HW_COUNTERS");
    unsetenv("TRMMA_HW_COUNTER_SET");
    unsetenv("TRMMA_CPU_PROFILE");
  }
};

// ---- multiplex scaling math (pure, synthetic values) -----------------------

TEST(HwCountersTest, ScaleMultiplexedFullyScheduledIsIdentity) {
  // Counter ran the whole window: the raw value must come back untouched,
  // not multiplied by a ratio that rounds through 1.0.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(12345, 1000, 1000), 12345.0);
  // Clock skew can report running > enabled; still identity.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(500, 999, 1000), 500.0);
}

TEST(HwCountersTest, ScaleMultiplexedExtrapolatesSharedSlots) {
  // Ran half the window: extrapolate by 2x.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(100, 1000, 500), 200.0);
  // Ran a quarter: 4x.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(100, 1000, 250), 400.0);
  // Zero raw stays zero regardless of the ratio.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(0, 1000, 10), 0.0);
}

TEST(HwCountersTest, ScaleMultiplexedNeverRanScalesToZero) {
  // time_running == 0 means the kernel never scheduled the group; there is
  // nothing to extrapolate from and 0/0 must not become NaN.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(0, 1000, 0), 0.0);
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(77, 1000, 0), 0.0);
}

TEST(HwCountersTest, DeltaIpcGuardsUnmeasuredSlots) {
  HwCounterDelta d;
  EXPECT_DOUBLE_EQ(d.ipc(), 0.0);  // nothing measured
  d.value[kHwCycles] = 1000.0;
  d.measured[kHwCycles] = true;
  EXPECT_DOUBLE_EQ(d.ipc(), 0.0);  // instructions unmeasured
  d.value[kHwInstructions] = 2500.0;
  d.measured[kHwInstructions] = true;
  EXPECT_DOUBLE_EQ(d.ipc(), 2.5);
}

TEST(HwCountersTest, DeltaAccumulateFoldsMeasuredSlotsOnly) {
  HwCounterDelta a;
  a.value[kHwCycles] = 100.0;
  a.measured[kHwCycles] = true;
  a.time_enabled_ns = 10.0;
  a.time_running_ns = 10.0;

  HwCounterDelta b;
  b.value[kHwCycles] = 50.0;
  b.measured[kHwCycles] = true;
  b.value[kHwLlcMisses] = 7.0;
  b.measured[kHwLlcMisses] = true;
  b.value[kHwBranchMisses] = 999.0;  // never measured — must not leak in
  b.time_enabled_ns = 5.0;
  b.time_running_ns = 4.0;

  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.value[kHwCycles], 150.0);
  EXPECT_TRUE(a.measured[kHwLlcMisses]);
  EXPECT_DOUBLE_EQ(a.value[kHwLlcMisses], 7.0);
  EXPECT_FALSE(a.measured[kHwBranchMisses]);
  EXPECT_DOUBLE_EQ(a.value[kHwBranchMisses], 0.0);
  EXPECT_DOUBLE_EQ(a.time_enabled_ns, 15.0);
  EXPECT_DOUBLE_EQ(a.time_running_ns, 14.0);
}

// ---- disabled-stub semantics -----------------------------------------------

TEST(HwCountersTest, DisabledStubScopesAreInert) {
  HwGuard guard;
  ASSERT_FALSE(HwCounters::Enabled());
  EXPECT_FALSE(HwCounters::Global().available());
  EXPECT_EQ(HwCounters::Global().reason(), "not requested");

  HwCounterScope scope(true);
  EXPECT_FALSE(scope.active());
  HwCounterDelta delta;
  delta.value[kHwCycles] = 42.0;  // End must not touch `out` on failure
  EXPECT_FALSE(scope.End(&delta));
  EXPECT_DOUBLE_EQ(delta.value[kHwCycles], 42.0);

  // Calibration on a disarmed subsystem reports unmeasured, all zeros.
  const HwCalibration calib = HwCounters::Global().Calibrate();
  EXPECT_FALSE(calib.measured);
  EXPECT_DOUBLE_EQ(calib.flop_per_cycle, 0.0);
}

TEST(HwCountersTest, DisabledSectionJsonIsValidAndDegraded) {
  HwGuard guard;
  const std::string json = HwCounters::Global().SectionJson();
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_FALSE(doc->Get("available").AsBool(true));
  EXPECT_FALSE(doc->Get("reason").AsString().empty());
  EXPECT_TRUE(doc->Get("counters").is_array());
  EXPECT_TRUE(doc->Get("counters").AsArray().empty());
  EXPECT_TRUE(doc->Get("calibration").is_object());
  EXPECT_FALSE(doc->Get("calibration").Get("measured").AsBool(true));
  EXPECT_TRUE(doc->Get("ops").is_array());
  EXPECT_TRUE(doc->Get("sweep").is_array());
}

// ---- env fallback (the paranoid-kernel drill, forced deterministically) ----

TEST(HwCountersTest, EnvOffForcesRefusalWithReason) {
  HwGuard guard;
  setenv("TRMMA_HW_COUNTERS", "off", 1);
  const Status status = HwCounters::Global().Enable();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(HwCounters::Enabled());
  EXPECT_NE(HwCounters::Global().reason().find("TRMMA_HW_COUNTERS"),
            std::string::npos);
  // EnableFromEnv honors the same force-off and reports disarmed.
  EXPECT_FALSE(HwCounters::Global().EnableFromEnv());
}

TEST(HwCountersTest, EnableFromEnvLeavesSubsystemAloneWhenUnset) {
  HwGuard guard;
  unsetenv("TRMMA_HW_COUNTERS");
  EXPECT_FALSE(HwCounters::Global().EnableFromEnv());
  EXPECT_EQ(HwCounters::Global().reason(), "not requested");
}

// ---- the CPU-profiler interlock --------------------------------------------

TEST(HwCountersTest, RefusesWhileCpuProfilerArmedInEnv) {
  HwGuard guard;
  // Armed-but-not-started is enough: the interlock must close the window
  // where both subsystems race to arm first.
  setenv("TRMMA_CPU_PROFILE", "1", 1);
  const Status status = HwCounters::Global().Enable();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(HwCounters::Enabled());
  EXPECT_NE(HwCounters::Global().reason().find("cpu profiler"),
            std::string::npos);
}

TEST(HwCountersTest, CpuProfilerRefusesWhileCountersEnabled) {
  HwGuard guard;
  // Drive the atomic directly via a real Enable() if the host allows it;
  // otherwise the interlock in CpuProfiler::Start is unreachable on this
  // host and the refusal comes from perf itself — skip.
  if (!HwCounters::Global().Enable().ok()) {
    GTEST_SKIP() << "hw counters unavailable: "
                 << HwCounters::Global().reason();
  }
  const Status status = CpuProfiler::Global().Start(CpuProfilerConfig{});
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("hardware counters"), std::string::npos);
  HwCounters::Global().Disable();
}

// ---- live counters (skipped on perf-restricted hosts) ----------------------

TEST(HwCountersTest, NestedScopesMeasureIndependentDeltas) {
  HwGuard guard;
  if (!HwCounters::Global().Enable().ok()) {
    // Restricted host: nested scopes still nest as inert stubs.
    HwCounterScope outer(true);
    HwCounterScope inner(true);
    EXPECT_FALSE(inner.active());
    EXPECT_FALSE(outer.active());
    GTEST_SKIP() << "hw counters unavailable: "
                 << HwCounters::Global().reason();
  }
  volatile double sink = 1.0;
  HwCounterScope outer(true);
  ASSERT_TRUE(outer.active());
  HwCounterDelta inner_delta;
  {
    HwCounterScope inner(true);
    ASSERT_TRUE(inner.active());
    for (int i = 0; i < 200000; ++i) sink = sink * 1.0000001 + 1e-9;
    ASSERT_TRUE(inner.End(&inner_delta));
  }
  for (int i = 0; i < 50000; ++i) sink = sink * 1.0000001 + 1e-9;
  HwCounterDelta outer_delta;
  ASSERT_TRUE(outer.End(&outer_delta));

  EXPECT_TRUE(inner_delta.measured[kHwCycles]);
  EXPECT_GT(inner_delta.cycles(), 0.0);
  // The outer scope contains the inner work plus its own: counters are
  // free-running, so outer >= inner by construction.
  EXPECT_GE(outer_delta.cycles(), inner_delta.cycles());
  EXPECT_GT(outer_delta.time_enabled_ns, 0.0);
  HwCounters::Global().Disable();
}

TEST(HwCountersTest, EnabledSectionJsonCarriesCalibration) {
  HwGuard guard;
  if (!HwCounters::Global().Enable().ok()) {
    GTEST_SKIP() << "hw counters unavailable: "
                 << HwCounters::Global().reason();
  }
  const HwCalibration calib = HwCounters::Global().Calibrate();
  EXPECT_TRUE(calib.measured);
  EXPECT_GT(calib.flop_per_cycle, 0.0);
  EXPECT_GT(calib.bytes_per_cycle, 0.0);

  HwCounterDelta delta;
  {
    HwCounterScope scope(true);
    volatile double sink = 1.0;
    for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 1e-9;
    ASSERT_TRUE(scope.End(&delta));
  }
  HwCounters::Global().RecordSweepPoint("test", 64, delta, 1e6, 1e5);

  auto doc = ParseJson(HwCounters::Global().SectionJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->Get("available").AsBool(false));
  EXPECT_FALSE(doc->Get("counters").AsArray().empty());
  EXPECT_TRUE(doc->Get("calibration").Get("measured").AsBool(false));
  ASSERT_EQ(doc->Get("sweep").AsArray().size(), 1u);
  const JsonValue& point = doc->Get("sweep").AsArray()[0];
  EXPECT_EQ(point.Get("label").AsString(), "test");
  EXPECT_GT(point.Get("cycles").AsNumber(), 0.0);
  EXPECT_GT(point.Get("flop_per_cycle").AsNumber(), 0.0);
  HwCounters::Global().Disable();
}

}  // namespace
}  // namespace obs
}  // namespace trmma
