#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "eval/inspect.h"
#include "obs/json_parse.h"
#include "obs/request_record.h"
#include "tests/test_util.h"

#ifndef TRMMA_GOLDEN_DIR
#define TRMMA_GOLDEN_DIR "tests/golden"
#endif

namespace trmma {
namespace {

/// A hand-crafted record over the deterministic 3x3 grid: every coordinate
/// in the output is a pure function of MakeGrid's fixed projection, so the
/// rendered GeoJSON is byte-stable and safe to pin in a golden file.
obs::RequestRecord MakeGeoRecord(const RoadNetwork& network) {
  obs::RequestRecord r;
  r.id = "req-000007";
  r.kind = "mm";
  r.method = "FMM";
  r.city = "grid";
  const LatLng a = network.node(0).pos;
  const LatLng b = network.node(3).pos;
  r.input = {{a.lat, a.lng, 0.0}, {b.lat, b.lng, 15.0}};
  // One out-of-range candidate and one bogus route segment exercise the
  // renderer's skip path (records may outlive a renamed network).
  r.candidates = {{{0, 5.0, 0.25}, {2, 12.0, 0.5}},
                  {{4, 3.0, 0.75}, {999, 1.0, 0.5}}};
  r.route = {0, 999, 4};
  r.recovered = {{1, 0.5, 30.0}, {2000, 0.1, 60.0}};
  return r;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string TrimTrailing(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

TEST(GeoJsonTest, MatchesGoldenFile) {
  auto network = test::MakeGrid(3, 3);
  ASSERT_NE(network, nullptr);
  const std::string rendered =
      RecordToGeoJson(*network, MakeGeoRecord(*network));
  const std::string golden_path =
      std::string(TRMMA_GOLDEN_DIR) + "/flight_record.geojson";
  if (std::getenv("TRMMA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << rendered << "\n";
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }
  const std::string golden = ReadFile(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path
      << " (regenerate with TRMMA_UPDATE_GOLDEN=1)";
  EXPECT_EQ(TrimTrailing(golden), rendered)
      << "GeoJSON output drifted from the golden file; if intentional, "
         "regenerate with TRMMA_UPDATE_GOLDEN=1";
}

TEST(GeoJsonTest, StructureLayersAndCoordinateOrder) {
  auto network = test::MakeGrid(3, 3);
  ASSERT_NE(network, nullptr);
  const obs::RequestRecord record = MakeGeoRecord(*network);
  auto doc = obs::ParseJson(RecordToGeoJson(*network, record));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  EXPECT_EQ(doc->Get("type").AsString(), "FeatureCollection");
  const std::vector<obs::JsonValue>& features =
      doc->Get("features").AsArray();
  // 2 gps + 3 valid candidates + 1 route + 1 valid recovered; the
  // out-of-range candidate and recovered segment are skipped.
  ASSERT_EQ(features.size(), 7u);

  int gps = 0, candidate = 0, route = 0, recovered = 0;
  for (const obs::JsonValue& f : features) {
    EXPECT_EQ(f.Get("type").AsString(), "Feature");
    ASSERT_TRUE(f.Get("geometry").is_object());
    ASSERT_TRUE(f.Get("properties").is_object());
    const std::string layer = f.Get("properties").Get("layer").AsString();
    if (layer == "gps") ++gps;
    if (layer == "candidate") ++candidate;
    if (layer == "route") ++route;
    if (layer == "recovered") ++recovered;
  }
  EXPECT_EQ(gps, 2);
  EXPECT_EQ(candidate, 3);
  EXPECT_EQ(route, 1);
  EXPECT_EQ(recovered, 1);

  // RFC 7946 coordinate order is [lng, lat]: the first gps feature must
  // carry the recorded point with longitude first.
  const obs::JsonValue& first = features[0];
  EXPECT_EQ(first.Get("properties").Get("layer").AsString(), "gps");
  const auto& coords = first.Get("geometry").Get("coordinates").AsArray();
  ASSERT_EQ(coords.size(), 2u);
  EXPECT_DOUBLE_EQ(coords[0].AsNumber(), record.input[0].lng);
  EXPECT_DOUBLE_EQ(coords[1].AsNumber(), record.input[0].lat);
  // The grid sits near (31 N, 121 E), so order confusion is detectable.
  EXPECT_GT(coords[0].AsNumber(), 100.0);
  EXPECT_LT(coords[1].AsNumber(), 40.0);

  // Candidate features are LineStrings along the segment with per-layer
  // properties; the route LineString spans drawn-segments + 1 coordinates.
  for (const obs::JsonValue& f : features) {
    const std::string layer = f.Get("properties").Get("layer").AsString();
    if (layer == "candidate") {
      EXPECT_EQ(f.Get("geometry").Get("type").AsString(), "LineString");
      EXPECT_TRUE(f.Get("properties").Has("point_index"));
      EXPECT_TRUE(f.Get("properties").Has("segment"));
      EXPECT_TRUE(f.Get("properties").Has("distance"));
    } else if (layer == "route") {
      EXPECT_EQ(f.Get("geometry").Get("type").AsString(), "LineString");
      EXPECT_DOUBLE_EQ(f.Get("properties").Get("segments").AsNumber(), 2.0);
      EXPECT_EQ(f.Get("geometry").Get("coordinates").AsArray().size(), 3u);
    } else if (layer == "recovered") {
      EXPECT_EQ(f.Get("geometry").Get("type").AsString(), "Point");
      const auto& rc = f.Get("geometry").Get("coordinates").AsArray();
      ASSERT_EQ(rc.size(), 2u);
      const LatLng on_seg = network->LatLngOnSegment(1, 0.5);
      EXPECT_DOUBLE_EQ(rc[0].AsNumber(), on_seg.lng);
      EXPECT_DOUBLE_EQ(rc[1].AsNumber(), on_seg.lat);
    } else {
      EXPECT_EQ(f.Get("geometry").Get("type").AsString(), "Point");
    }
  }
}

}  // namespace
}  // namespace trmma
