#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "obs/metrics.h"

namespace trmma {
namespace obs {
namespace {

JsonValue MustParse(const std::string& text) {
  StatusOr<JsonValue> doc = ParseJson(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.ok() ? *doc : JsonValue();
}

// ------------------------------------------------------------------ parse

TEST(SloParseTest, ParsesEveryObjectiveKind) {
  const JsonValue doc = MustParse(R"({"objectives": [
    {"name": "lat", "histogram": "mm.candidates.us", "stat": "p99",
     "max": 100},
    {"name": "rss", "gauge": "mem.rss_peak.bytes", "max": 2e9},
    {"name": "errs", "counter": "dataset.load.bad_rows", "max": 0}
  ]})");
  StatusOr<std::vector<SloObjective>> objectives = ParseSloObjectives(doc);
  ASSERT_TRUE(objectives.ok()) << objectives.status().ToString();
  ASSERT_EQ(objectives->size(), 3u);
  EXPECT_EQ((*objectives)[0].kind, SloObjective::Kind::kHistogram);
  EXPECT_EQ((*objectives)[0].stat, "p99");
  EXPECT_EQ((*objectives)[1].kind, SloObjective::Kind::kGauge);
  EXPECT_DOUBLE_EQ((*objectives)[1].max, 2e9);
  EXPECT_EQ((*objectives)[2].kind, SloObjective::Kind::kCounter);
  EXPECT_EQ((*objectives)[2].metric, "dataset.load.bad_rows");
}

TEST(SloParseTest, StatDefaultsToP95AndQuantileSnaps) {
  const JsonValue doc = MustParse(R"({"objectives": [
    {"name": "a", "histogram": "h", "max": 1},
    {"name": "b", "histogram": "h", "quantile": 0.99, "max": 1},
    {"name": "c", "histogram": "h", "quantile": 0.5, "max": 1}
  ]})");
  StatusOr<std::vector<SloObjective>> objectives = ParseSloObjectives(doc);
  ASSERT_TRUE(objectives.ok());
  EXPECT_EQ((*objectives)[0].stat, "p95");
  EXPECT_EQ((*objectives)[1].stat, "p99");
  EXPECT_EQ((*objectives)[2].stat, "p50");
}

TEST(SloParseTest, RejectsMalformedObjectives) {
  // Zero sources.
  EXPECT_FALSE(ParseSloObjectives(MustParse(
                                      R"({"objectives": [{"name": "x",
                                          "max": 1}]})"))
                   .ok());
  // Two sources.
  EXPECT_FALSE(
      ParseSloObjectives(
          MustParse(R"({"objectives": [{"name": "x", "histogram": "h",
                        "gauge": "g", "max": 1}]})"))
          .ok());
  // Missing name / max, bad stat, bad quantile.
  EXPECT_FALSE(ParseSloObjectives(MustParse(
                                      R"({"objectives": [{"histogram": "h",
                                          "max": 1}]})"))
                   .ok());
  EXPECT_FALSE(ParseSloObjectives(MustParse(
                                      R"({"objectives": [{"name": "x",
                                          "histogram": "h"}]})"))
                   .ok());
  EXPECT_FALSE(
      ParseSloObjectives(
          MustParse(R"({"objectives": [{"name": "x", "histogram": "h",
                        "stat": "p42", "max": 1}]})"))
          .ok());
  EXPECT_FALSE(
      ParseSloObjectives(
          MustParse(R"({"objectives": [{"name": "x", "histogram": "h",
                        "quantile": 1.5, "max": 1}]})"))
          .ok());
  // Not even the right top-level shape.
  EXPECT_FALSE(ParseSloObjectives(MustParse("[1,2,3]")).ok());
}

// ----------------------------------------------------------- offline eval

TEST(SloOfflineTest, EvaluatesReportMetricsAndFlagsBreaches) {
  // The negative case the acceptance criteria call for: a violated
  // objective must be reported as a breach, not silently pass.
  const JsonValue doc = MustParse(R"({"objectives": [
    {"name": "lat_ok", "histogram": "lat.us", "stat": "p95", "max": 100},
    {"name": "lat_bad", "histogram": "lat.us", "stat": "p95", "max": 1},
    {"name": "errs_bad", "counter": "errs", "max": 0},
    {"name": "missing", "gauge": "not.there", "max": 5}
  ]})");
  StatusOr<std::vector<SloObjective>> objectives = ParseSloObjectives(doc);
  ASSERT_TRUE(objectives.ok());
  // A BENCH-shaped report: metrics nested under "metrics".
  const JsonValue report = MustParse(R"({"name": "t", "metrics": {
    "counters": [
      {"name": "errs", "labels": {"city": "PT"}, "value": 2},
      {"name": "errs", "labels": {"city": "XA"}, "value": 3}
    ],
    "gauges": [],
    "histograms": [
      {"name": "lat.us", "labels": {}, "count": 10, "sum": 100, "min": 1,
       "max": 50, "mean": 10, "p50": 8, "p95": 40, "p99": 49}
    ]
  }})");
  const std::vector<SloResult> results =
      EvaluateSloAgainstReport(*objectives, report);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].has_data);
  EXPECT_TRUE(results[0].ok);
  EXPECT_DOUBLE_EQ(results[0].value, 40.0);
  EXPECT_TRUE(results[1].has_data);
  EXPECT_FALSE(results[1].ok);
  // Counters sum across label sets: 2 + 3 = 5 > 0 breaches.
  EXPECT_TRUE(results[2].has_data);
  EXPECT_FALSE(results[2].ok);
  EXPECT_DOUBLE_EQ(results[2].value, 5.0);
  // A metric the run never touched is no-data, not a breach.
  EXPECT_FALSE(results[3].has_data);
  EXPECT_TRUE(results[3].ok);
}

TEST(SloOfflineTest, BareMetricsDocumentAlsoWorks) {
  const JsonValue doc = MustParse(R"({"objectives": [
    {"name": "g", "gauge": "v", "max": 1}
  ]})");
  StatusOr<std::vector<SloObjective>> objectives = ParseSloObjectives(doc);
  ASSERT_TRUE(objectives.ok());
  const JsonValue metrics = MustParse(
      R"({"counters": [], "gauges": [{"name": "v", "labels": {},
          "value": 0.5}], "histograms": []})");
  const std::vector<SloResult> results =
      EvaluateSloAgainstReport(*objectives, metrics);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].has_data);
  EXPECT_TRUE(results[0].ok);
}

TEST(SloOfflineTest, ResultsJsonRoundTrips) {
  SloResult r;
  r.name = "lat";
  r.metric = "lat.us";
  r.stat = "p95";
  r.value = 40.0;
  r.max = 100.0;
  r.has_data = true;
  r.ok = true;
  const std::string json = SloResultsJson({r});
  const JsonValue parsed = MustParse(json);
  ASSERT_TRUE(parsed.is_array());
  ASSERT_EQ(parsed.AsArray().size(), 1u);
  EXPECT_EQ(parsed.AsArray()[0].Get("name").AsString(), "lat");
  EXPECT_TRUE(parsed.AsArray()[0].Get("ok").AsBool(false));
}

// -------------------------------------------------------------- watchdog

TEST(SloWatchdogTest, LiveEvaluationMaintainsBreachTelemetry) {
  SloWatchdog watchdog;
  ASSERT_TRUE(watchdog
                  .LoadFromJsonText(R"({"objectives": [
                    {"name": "too_many", "counter": "slo.test.hits",
                     "max": 1},
                    {"name": "fine", "gauge": "slo.test.level", "max": 10}
                  ]})")
                  .ok());
  EXPECT_TRUE(watchdog.active());

  MetricRegistry reg;
  reg.GetCounter("slo.test.hits")->Increment(5);
  reg.GetGauge("slo.test.level")->Set(3.0);

  std::vector<SloResult> results = watchdog.Evaluate(&reg);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(
      reg.GetCounter("slo.breach.total", {{"objective", "too_many"}})->Value(),
      1);
  EXPECT_DOUBLE_EQ(
      reg.GetGauge("slo.ok", {{"objective", "too_many"}})->Value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("slo.ok", {{"objective", "fine"}})->Value(),
                   1.0);
  // Each breached evaluation increments the counter again.
  watchdog.Evaluate(&reg);
  EXPECT_EQ(
      reg.GetCounter("slo.breach.total", {{"objective", "too_many"}})->Value(),
      2);

  const std::string status = watchdog.StatusJson();
  EXPECT_NE(status.find("\"active\":true"), std::string::npos);
  EXPECT_NE(status.find("\"too_many\""), std::string::npos);

  watchdog.Clear();
  EXPECT_FALSE(watchdog.active());
}

TEST(SloWatchdogTest, HistogramObjectiveAggregatesLabelSets) {
  SloWatchdog watchdog;
  ASSERT_TRUE(watchdog
                  .LoadFromJsonText(R"({"objectives": [
                    {"name": "lat", "histogram": "slo.test.us",
                     "stat": "max", "max": 100}
                  ]})")
                  .ok());
  MetricRegistry reg;
  reg.GetHistogram("slo.test.us", {{"city", "PT"}}, {10.0, 1000.0})
      ->Observe(5.0);
  reg.GetHistogram("slo.test.us", {{"city", "XA"}}, {10.0, 1000.0})
      ->Observe(500.0);
  std::vector<SloResult> results = watchdog.Evaluate(&reg);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].has_data);
  // The merged max spans both label sets, so the XA outlier breaches.
  EXPECT_FALSE(results[0].ok);
  EXPECT_DOUBLE_EQ(results[0].value, 500.0);
}

TEST(SloWatchdogTest, BadJsonIsRejectedLoudly) {
  SloWatchdog watchdog;
  EXPECT_FALSE(watchdog.LoadFromJsonText("{not json").ok());
  EXPECT_FALSE(watchdog.LoadFromJsonText(R"({"objectives": "nope"})").ok());
  EXPECT_FALSE(watchdog.active());
  EXPECT_FALSE(watchdog.LoadFromFile("/nonexistent/slo.json").ok());
}

}  // namespace
}  // namespace obs
}  // namespace trmma
