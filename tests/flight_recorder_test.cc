#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/inspect.h"
#include "obs/flight_recorder.h"
#include "obs/json_parse.h"
#include "obs/request_record.h"
#include "tests/test_util.h"

namespace trmma {
namespace obs {
namespace {

/// Puts the global recorder into a known state for one test and restores
/// the disabled default afterwards (other suites rely on it being off).
class RecorderFixture {
 public:
  explicit RecorderFixture(FlightRecorderConfig config) {
    FlightRecorder::Global().ResetForTest();
    FlightRecorder::Global().Configure(config);
  }
  ~RecorderFixture() {
    FlightRecorder::Global().Configure(FlightRecorderConfig());
    FlightRecorder::Global().ResetForTest();
  }
};

FlightRecorderConfig RetentionOnlyConfig() {
  FlightRecorderConfig config;
  config.enabled = true;
  config.path = "";  // retention only; Flush is a no-op
  return config;
}

RequestRecord MakeRecord(const std::string& id) {
  RequestRecord r;
  r.id = id;
  r.kind = "mm";
  r.method = "FMM";
  r.city = "XA";
  return r;
}

// ------------------------------------------------------------- json parse

TEST(JsonParseTest, ParsesNestedDocument) {
  auto doc = ParseJson(
      R"({"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("a").AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->Get("a").AsArray()[1].AsNumber(), 2.5);
  EXPECT_EQ(doc->Get("b").Get("c").AsString(), "x\ny");
  EXPECT_TRUE(doc->Get("b").Get("d").AsBool());
  EXPECT_TRUE(doc->Get("b").Get("e").is_null());
  EXPECT_TRUE(doc->Get("missing").is_null());
}

TEST(JsonParseTest, DecodesUnicodeEscapes) {
  auto doc = ParseJson(R"({"s": "caf\u00e9"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("s").AsString(), "caf\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

// ----------------------------------------------------------- record codec

TEST(RequestRecordTest, JsonLineRoundTrip) {
  RequestRecord r = MakeRecord("req-000042");
  r.kind = "recovery";
  r.method = "TRMMA";
  r.seed = 7;
  r.epsilon = 12;
  r.dataset_trajectories = 60;
  r.train_state = {"mma:2:1", "trmma:1:0.5"};
  r.input = {{31.25, 121.5, 0.0}, {31.26, 121.51, 15.0}};
  r.candidates = {{{3, 12.5, 0.25}, {4, 40.0, 0.75}}, {{9, 7.0, 0.5}}};
  r.scores = {0.9, 0.8};
  r.matched = {{3, 0.25, 0.0}};
  r.route = {3, 4, 9};
  r.recovered = {{3, 0.5, 5.0}, {4, 0.75, 10.0}};
  r.outcome = "ok";
  r.route_sections = 1;
  r.degraded_points = 0;
  r.events = {"candidates:radius_widened@1"};
  r.error = "";
  r.wall_us = 1234;
  r.stages = {{"match", 1000}, {"stitch", 234}};
  r.quality = 0.875;
  r.reason = "sampled";

  auto parsed = RequestRecordFromJsonLine(r.ToJsonLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, r.id);
  EXPECT_EQ(parsed->kind, r.kind);
  EXPECT_EQ(parsed->method, r.method);
  EXPECT_EQ(parsed->city, r.city);
  EXPECT_EQ(parsed->seed, r.seed);
  EXPECT_EQ(parsed->epsilon, r.epsilon);
  EXPECT_EQ(parsed->dataset_trajectories, r.dataset_trajectories);
  EXPECT_EQ(parsed->train_state, r.train_state);
  ASSERT_EQ(parsed->input.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->input[1].lat, 31.26);
  EXPECT_DOUBLE_EQ(parsed->input[1].t, 15.0);
  ASSERT_EQ(parsed->candidates.size(), 2u);
  ASSERT_EQ(parsed->candidates[0].size(), 2u);
  EXPECT_EQ(parsed->candidates[0][1].segment, 4);
  EXPECT_DOUBLE_EQ(parsed->candidates[0][1].distance, 40.0);
  EXPECT_EQ(parsed->scores, r.scores);
  ASSERT_EQ(parsed->matched.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->matched[0].ratio, 0.25);
  EXPECT_EQ(parsed->route, r.route);
  ASSERT_EQ(parsed->recovered.size(), 2u);
  EXPECT_EQ(parsed->recovered[1].segment, 4);
  EXPECT_EQ(parsed->outcome, "ok");
  EXPECT_EQ(parsed->route_sections, 1);
  EXPECT_EQ(parsed->events, r.events);
  EXPECT_EQ(parsed->wall_us, 1234);
  ASSERT_EQ(parsed->stages.size(), 2u);
  EXPECT_EQ(parsed->stages[0].name, "match");
  EXPECT_EQ(parsed->stages[0].us, 1000);
  EXPECT_DOUBLE_EQ(parsed->quality, 0.875);
  EXPECT_EQ(parsed->reason, "sampled");
}

TEST(RequestRecordTest, RejectsMalformedOrIdLessLines) {
  EXPECT_FALSE(RequestRecordFromJsonLine("not json").ok());
  EXPECT_FALSE(RequestRecordFromJsonLine("{\"kind\": \"mm\"}").ok());
  EXPECT_FALSE(RequestRecordFromJsonLine("{\"id\": \"\"}").ok());
}

// -------------------------------------------------------------- retention

TEST(FlightRecorderTest, UniformSamplingRetainsEveryNth) {
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 3;
  config.top_slow = 0;
  config.top_worst = 0;
  config.max_outcome_records = 0;
  RecorderFixture fixture(config);
  FlightRecorder& recorder = FlightRecorder::Global();
  for (int i = 0; i < 9; ++i) {
    recorder.End(MakeRecord("req-" + std::to_string(i)), i);
  }
  const std::vector<RequestRecord> kept = recorder.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  for (const RequestRecord& r : kept) EXPECT_EQ(r.reason, "sampled");
  EXPECT_EQ(recorder.stats().requests, 9);
}

TEST(FlightRecorderTest, TopSlowEvictsTheFastest) {
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 1000000;  // index 0 is still sampled; start at 1
  config.top_slow = 2;
  config.top_worst = 0;
  config.max_outcome_records = 0;
  RecorderFixture fixture(config);
  FlightRecorder& recorder = FlightRecorder::Global();
  const std::int64_t walls[] = {20, 10, 30};
  for (int i = 0; i < 3; ++i) {
    RequestRecord r = MakeRecord("req-" + std::to_string(i));
    r.wall_us = walls[i];
    recorder.End(std::move(r), i + 1);
  }
  const std::vector<RequestRecord> kept = recorder.Snapshot();
  ASSERT_EQ(kept.size(), 2u);  // wall 10 evicted by wall 30
  for (const RequestRecord& r : kept) {
    EXPECT_EQ(r.reason, "slow");
    EXPECT_NE(r.wall_us, 10);
  }
}

TEST(FlightRecorderTest, WorstQualityKeepsLowestAndIgnoresUnknown) {
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 1000000;
  config.top_slow = 0;
  config.top_worst = 2;
  config.max_outcome_records = 0;
  RecorderFixture fixture(config);
  FlightRecorder& recorder = FlightRecorder::Global();
  const double qualities[] = {0.9, 0.2, -1.0, 0.5};  // -1 = not measured
  for (int i = 0; i < 4; ++i) {
    RequestRecord r = MakeRecord("req-" + std::to_string(i));
    r.quality = qualities[i];
    recorder.End(std::move(r), i + 1);
  }
  const std::vector<RequestRecord> kept = recorder.Snapshot();
  ASSERT_EQ(kept.size(), 2u);  // 0.2 and 0.5; 0.9 evicted, -1 never entered
  for (const RequestRecord& r : kept) {
    EXPECT_EQ(r.reason, "worst");
    EXPECT_LE(r.quality, 0.5);
    EXPECT_GE(r.quality, 0.0);
  }
}

TEST(FlightRecorderTest, FailedAndDegradedRetainedUpToCap) {
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 1000000;
  config.top_slow = 0;
  config.top_worst = 0;
  config.max_outcome_records = 2;
  RecorderFixture fixture(config);
  FlightRecorder& recorder = FlightRecorder::Global();
  const char* outcomes[] = {"failed", "ok", "degraded", "failed"};
  for (int i = 0; i < 4; ++i) {
    RequestRecord r = MakeRecord("req-" + std::to_string(i));
    r.outcome = outcomes[i];
    recorder.End(std::move(r), i + 1);
  }
  const std::vector<RequestRecord> kept = recorder.Snapshot();
  ASSERT_EQ(kept.size(), 2u);  // cap reached before the second "failed"
  for (const RequestRecord& r : kept) EXPECT_EQ(r.reason, "outcome");
}

// ----------------------------------------------------------- scope + gate

TEST(FlightRecorderTest, DisabledRecorderMakesHooksInert) {
  RecorderFixture fixture{FlightRecorderConfig()};  // disabled default
  EXPECT_EQ(ActiveRecord(), nullptr);
  RequestScope scope("mm");
  EXPECT_EQ(scope.record(), nullptr);
  EXPECT_EQ(ActiveRecord(), nullptr);
  RecordEvent("dropped on the floor");
  EXPECT_EQ(FlightRecorder::Global().stats().requests, 0);
}

TEST(FlightRecorderTest, NestedScopesProduceOneRecord) {
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 1;
  RecorderFixture fixture(config);
  {
    RequestScope outer("pipeline");
    ASSERT_NE(outer.record(), nullptr);
    EXPECT_EQ(ActiveRecord(), outer.record());
    {
      // The matcher invoked by the pipeline opens its own scope; it must
      // not displace the pipeline's record.
      RequestScope inner("mm");
      EXPECT_EQ(inner.record(), nullptr);
      EXPECT_EQ(ActiveRecord(), outer.record());
      RecordEvent("from-inner");
    }
    EXPECT_EQ(ActiveRecord(), outer.record());
  }
  const std::vector<RequestRecord> kept = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].kind, "pipeline");
  ASSERT_EQ(kept[0].events.size(), 1u);
  EXPECT_EQ(kept[0].events[0], "from-inner");
  EXPECT_GE(kept[0].wall_us, 0);
}

TEST(FlightRecorderTest, EventListIsCappedWithMarker) {
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 1;
  config.max_events = 4;
  RecorderFixture fixture(config);
  {
    RequestScope scope("mm");
    ASSERT_NE(scope.record(), nullptr);
    for (int i = 0; i < 10; ++i) RecordEvent("e" + std::to_string(i));
  }
  const std::vector<RequestRecord> kept = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  ASSERT_EQ(kept[0].events.size(), 5u);  // 4 events + truncation marker
  EXPECT_EQ(kept[0].events.back(), "events_truncated");
}

TEST(FlightRecorderTest, ConfigFromEnvParsesSampleAndPath) {
  ::setenv("TRMMA_FLIGHT_RECORDER", "7", 1);
  ::setenv("TRMMA_FLIGHT_RECORDER_FILE", "/tmp/fr-env.jsonl", 1);
  FlightRecorderConfig config = FlightRecorderConfigFromEnv();
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.sample_every, 7);
  EXPECT_EQ(config.path, "/tmp/fr-env.jsonl");
  ::setenv("TRMMA_FLIGHT_RECORDER", "0", 1);
  EXPECT_FALSE(FlightRecorderConfigFromEnv().enabled);
  ::unsetenv("TRMMA_FLIGHT_RECORDER");
  ::unsetenv("TRMMA_FLIGHT_RECORDER_FILE");
  EXPECT_FALSE(FlightRecorderConfigFromEnv().enabled);
}

// ------------------------------------------------------- flush + loading

TEST(FlightRecorderTest, FlushIsIdempotentAndLoadable) {
  const std::string path =
      testing::TempDir() + "/trmma_flight_flush.jsonl";
  std::remove(path.c_str());
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 1;
  config.path = path;
  RecorderFixture fixture(config);
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.End(MakeRecord("req-000001"), 0);
  recorder.End(MakeRecord("req-000000"), 1);
  EXPECT_EQ(recorder.Flush(), 2);
  const std::int64_t bytes_first = recorder.stats().bytes;
  EXPECT_GT(bytes_first, 0);
  EXPECT_EQ(recorder.Flush(), 2);  // truncate-and-rewrite, not append
  EXPECT_EQ(recorder.stats().bytes, bytes_first);

  auto loaded = LoadRecords(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  // Sorted by id regardless of End order.
  EXPECT_EQ((*loaded)[0].id, "req-000000");
  EXPECT_EQ((*loaded)[1].id, "req-000001");
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, LoadRecordsRejectsCorruptedLines) {
  const std::string path =
      testing::TempDir() + "/trmma_flight_corrupt.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << MakeRecord("req-000000").ToJsonLine() << "\n";
    out << "{\"id\": \"req-000001\", \"route\": [1, 2,\n";  // truncated JSON
  }
  EXPECT_FALSE(LoadRecords(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadRecords(path).ok());  // missing file is an error too
}

// ----------------------------------------------------------------- replay

TEST(FlightRecorderReplayTest, ReplayReproducesAndDetectsTampering) {
  FlightRecorderConfig config = RetentionOnlyConfig();
  config.sample_every = 1;
  RecorderFixture fixture(config);

  Dataset dataset = test::MakeTinyDataset("XA", 60);
  StackConfig stack_config;
  ExperimentStack stack = BuildStack(dataset, stack_config);
  EvaluateMapMatching(stack, *stack.fmm, 2);
  EvaluateRecovery(stack, *stack.linear, 2);

  const std::vector<RequestRecord> records =
      FlightRecorder::Global().Snapshot();
  RequestRecord record;       // an mm exemplar with a route
  RequestRecord rec_record;   // a recovery exemplar with offsets
  for (const RequestRecord& r : records) {
    if (r.kind == "mm" && !r.route.empty() && record.id.empty()) record = r;
    if (r.kind == "recovery" && !r.recovered.empty() &&
        rec_record.id.empty()) {
      rec_record = r;
    }
  }
  ASSERT_FALSE(record.id.empty());
  ASSERT_FALSE(rec_record.id.empty());

  // Clean replay against the same stack: bit-exact.
  auto diff = ReplayRecord(stack, record);
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(diff->compared, 0);
  EXPECT_EQ(diff->mismatches, 0);
  EXPECT_TRUE(diff->clean());

  // Negative self-test: a tampered route segment must be flagged...
  RequestRecord tampered_route = record;
  tampered_route.route[0] += 1;
  auto route_diff = ReplayRecord(stack, tampered_route);
  ASSERT_TRUE(route_diff.ok());
  EXPECT_GT(route_diff->mismatches, 0);
  EXPECT_FALSE(route_diff->details.empty());

  // ...as must a nudged recovered offset (offsets compare bit-exactly).
  auto rec_clean = ReplayRecord(stack, rec_record);
  ASSERT_TRUE(rec_clean.ok());
  EXPECT_TRUE(rec_clean->clean());
  RequestRecord tampered_offset = rec_record;
  tampered_offset.recovered[0].ratio += 1e-9;
  auto offset_diff = ReplayRecord(stack, tampered_offset);
  ASSERT_TRUE(offset_diff.ok());
  EXPECT_GT(offset_diff->mismatches, 0);

  // An unknown method is an error, not a silent zero-mismatch pass.
  RequestRecord bad_method = record;
  bad_method.method = "NoSuchMatcher";
  EXPECT_FALSE(ReplayRecord(stack, bad_method).ok());

  // Mismatches reported by the bench helper land in the recorder stats.
  FlightRecorder::Global().AddReplayMismatches(3);
  EXPECT_EQ(FlightRecorder::Global().stats().replay_mismatches, 3);
}

}  // namespace
}  // namespace obs
}  // namespace trmma
