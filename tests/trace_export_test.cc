#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_export.h"

namespace trmma {
namespace obs {
namespace {

/// Restores the process TraceMode on scope exit so tests can flip it freely.
class ModeGuard {
 public:
  explicit ModeGuard(TraceMode mode) : prev_(CurrentTraceMode()) {
    SetTraceMode(mode);
  }
  ~ModeGuard() { SetTraceMode(prev_); }

 private:
  TraceMode prev_;
};

SpanRecord MakeSpan(const char* name, int64_t seq, int64_t parent, int depth,
                    double start_us, double dur_us, uint64_t trace_id = 0,
                    int64_t link_seq = -1, int lane = 0) {
  SpanRecord rec;
  rec.name = name;
  rec.seq = seq;
  rec.parent_seq = parent;
  rec.depth = depth;
  rec.start_us = start_us;
  rec.duration_us = dur_us;
  rec.trace_id = trace_id;
  rec.link_seq = link_seq;
  rec.lane = lane;
  return rec;
}

// Tiny scanning helpers: the exporter's output is deterministic, so tests
// can assert on substrings without a JSON parser.
int CountOccurrences(const std::string& s, const std::string& needle) {
  int n = 0;
  for (size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ------------------------------------------------------------- formatting

TEST(ChromeTraceJsonTest, EmitsCompleteEventsWithArgs) {
  std::vector<SpanRecord> records;
  records.push_back(MakeSpan("outer", 0, -1, 0, 10.0, 100.0));
  records.push_back(MakeSpan("inner", 1, 0, 1, 20.0, 30.0));
  const std::string json = ChromeTraceJson(records);

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(json.find("\"parent_seq\":-1"), std::string::npos);
  // ts/dur are microseconds, unscaled.
  EXPECT_NE(json.find("\"ts\":20"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":30"), std::string::npos);
}

TEST(ChromeTraceJsonTest, SortsBySeqAndHandlesNullName) {
  std::vector<SpanRecord> records;
  records.push_back(MakeSpan("late", 5, -1, 0, 50.0, 1.0));
  records.push_back(MakeSpan(nullptr, 2, -1, 0, 20.0, 1.0));
  const std::string json = ChromeTraceJson(records);
  // seq 2 must precede seq 5 regardless of input order.
  EXPECT_LT(json.find("\"seq\":2"), json.find("\"seq\":5"));
  EXPECT_NE(json.find("\"name\":\"?\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptyRingYieldsValidEmptyDocument) {
  const std::string json = ChromeTraceJson(std::vector<SpanRecord>{});
  EXPECT_EQ(json,
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(ChromeTraceJsonTest, RequestLaneSpansMoveToSyntheticProcess) {
  std::vector<SpanRecord> records;
  records.push_back(MakeSpan("serve.request", 0, -1, 0, 0.0, 100.0,
                             /*trace_id=*/0x2au, /*link_seq=*/-1, /*lane=*/3));
  records.push_back(MakeSpan("work", 1, -1, 0, 5.0, 20.0));
  const std::string json = ChromeTraceJson(records);

  // Lane spans render under pid 2 with the lane as tid; worker spans keep
  // pid 1. The synthetic process gets a metadata name event.
  EXPECT_NE(json.find("\"pid\":2,\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"M\""), 1);
  EXPECT_NE(json.find("\"name\":\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"000000000000002a\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, CrossLaneLinkEmitsOneFlowPair) {
  std::vector<SpanRecord> records;
  records.push_back(MakeSpan("serve.request", 0, -1, 0, 0.0, 100.0,
                             /*trace_id=*/7u, /*link_seq=*/-1, /*lane=*/1));
  records.push_back(MakeSpan("serve.attempt", 1, -1, 0, 10.0, 50.0,
                             /*trace_id=*/7u, /*link_seq=*/0));
  const std::string json = ChromeTraceJson(records);

  // One start/finish arrow from the root's lane to the attempt's thread,
  // keyed by the destination seq.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"s\""), 1);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"f\""), 1);
  EXPECT_EQ(CountOccurrences(json, "\"id\":1"), 2);
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"flow\""), 2);
}

TEST(ChromeTraceJsonTest, DanglingParentAndLinkRefsAreDropped) {
  // Seq 99 was evicted from the ring: the child's parent_seq must be
  // rewritten to -1 (viewers mis-stack X events whose parent interval is
  // gone) and the flow arrow must be suppressed entirely.
  std::vector<SpanRecord> records;
  records.push_back(MakeSpan("orphan", 5, /*parent=*/99, 1, 10.0, 5.0,
                             /*trace_id=*/7u, /*link_seq=*/99));
  const std::string json = ChromeTraceJson(records);
  EXPECT_NE(json.find("\"parent_seq\":-1"), std::string::npos);
  EXPECT_EQ(json.find("\"parent_seq\":99"), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"s\""), 0);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"f\""), 0);
}

// ------------------------------------------------------------ ring export

TEST(TraceRingExportTest, NestedSpansSurviveRoundTrip) {
  ModeGuard guard(TraceMode::kTrace);
  TraceRing ring(16);
  const int64_t outer = ring.BeginSpan("outer", 0.0);
  const int64_t inner = ring.BeginSpan("inner", 5.0);
  ring.EndSpan(9.0);
  ring.EndSpan(20.0);

  const std::vector<SpanRecord> records = ring.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Completion order: inner first.
  EXPECT_EQ(records[0].seq, inner);
  EXPECT_EQ(records[0].parent_seq, outer);
  EXPECT_EQ(records[0].depth, 1);
  EXPECT_EQ(records[1].seq, outer);
  EXPECT_EQ(records[1].parent_seq, -1);

  const std::string json = ChromeTraceJson(records);
  // Start order in the export: outer precedes inner.
  EXPECT_LT(json.find("\"name\":\"outer\""), json.find("\"name\":\"inner\""));
}

TEST(TraceRingExportTest, WraparoundEvictsOldestAndExportStaysValid) {
  ModeGuard guard(TraceMode::kTrace);
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.BeginSpan("span", i * 10.0);
    ring.EndSpan(i * 10.0 + 5.0);
  }
  const std::vector<SpanRecord> records = ring.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-to-newest: the six oldest spans (seq 0..5) were evicted.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, static_cast<int64_t>(6 + i));
  }
  const std::string json = ChromeTraceJson(ring);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 4);
  EXPECT_NE(json.find("\"seq\":9"), std::string::npos);
  EXPECT_EQ(json.find("\"seq\":5,"), std::string::npos);
}

TEST(TraceRingExportTest, WrappedRingMayOrphanParentsButStillExports) {
  ModeGuard guard(TraceMode::kTrace);
  TraceRing ring(2);
  const int64_t outer = ring.BeginSpan("outer", 0.0);
  ring.BeginSpan("a", 1.0);
  ring.EndSpan(2.0);
  ring.BeginSpan("b", 3.0);
  ring.EndSpan(4.0);
  ring.EndSpan(10.0);  // outer completes last; evicts "a"

  const std::vector<SpanRecord> records = ring.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, std::string("b"));
  EXPECT_EQ(records[0].parent_seq, outer);
  EXPECT_EQ(records[1].name, std::string("outer"));
  // "b"'s parent (outer) survived the wrap, so its parent_seq is kept.
  const std::string json = ChromeTraceJson(ring);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2);
  EXPECT_NE(json.find("\"parent_seq\":" + std::to_string(outer)),
            std::string::npos);
}

TEST(TraceRingExportTest, WriteChromeTraceWritesFile) {
  ModeGuard guard(TraceMode::kTrace);
  TraceRing ring(8);
  ring.BeginSpan("one", 0.0);
  ring.EndSpan(1.0);

  std::string path = ::testing::TempDir() + "trmma_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(ring, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ChromeTraceJson(ring));
  std::remove(path.c_str());
}

TEST(TraceRingExportTest, ThreadTraceIdIsStablePerThread) {
  const int a = ThreadTraceId();
  const int b = ThreadTraceId();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
}

}  // namespace
}  // namespace obs
}  // namespace trmma
