#include "obs/tracked_mutex.h"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace trmma {
namespace obs {
namespace {

class ModeGuard {
 public:
  explicit ModeGuard(TraceMode mode) : prev_(CurrentTraceMode()) {
    SetTraceMode(mode);
  }
  ~ModeGuard() { SetTraceMode(prev_); }

 private:
  TraceMode prev_;
};

TEST(TrackedMutexTest, CountsTrackedAcquisitions) {
  ModeGuard guard(TraceMode::kMetrics);
  TrackedMutex mu("test.counts");
  for (int i = 0; i < 5; ++i) {
    std::lock_guard<TrackedMutex> lock(mu);
  }
  const TrackedMutex::Stats stats = mu.stats();
  EXPECT_EQ(stats.acquisitions, 5);
  EXPECT_EQ(stats.contended, 0);
  // Uncontended acquisitions still record hold times.
  EXPECT_EQ(mu.hold_histogram().Count(), 5);
  EXPECT_EQ(mu.wait_histogram().Count(), 0);
}

TEST(TrackedMutexTest, DisabledModeRecordsNothing) {
  ModeGuard guard(TraceMode::kOff);
  TrackedMutex mu("test.off");
  {
    std::lock_guard<TrackedMutex> lock(mu);
  }
  EXPECT_EQ(mu.stats().acquisitions, 0);
  EXPECT_EQ(mu.hold_histogram().Count(), 0);
}

TEST(TrackedMutexTest, TryLockTrackedAndHonorsExclusion) {
  ModeGuard guard(TraceMode::kMetrics);
  TrackedMutex mu("test.trylock");
  ASSERT_TRUE(mu.try_lock());
  // A second thread must fail while we hold it (try_lock on the same thread
  // would be UB on std::mutex).
  bool second = true;
  std::thread other([&] { second = mu.try_lock(); });
  other.join();
  EXPECT_FALSE(second);
  mu.unlock();
  EXPECT_EQ(mu.stats().acquisitions, 1);
}

TEST(TrackedMutexTest, GateFlipMidHoldStillUnlocksSafely) {
  // lock() with tracking off, unlock() after flipping tracking on: the
  // unlock must take the untimed path (hold_timed_ records the lock-time
  // decision) instead of observing a garbage hold start.
  ModeGuard guard(TraceMode::kOff);
  TrackedMutex mu("test.flip");
  mu.lock();
  SetTraceMode(TraceMode::kMetrics);
  mu.unlock();
  EXPECT_EQ(mu.hold_histogram().Count(), 0);
  // And the reverse: tracked lock, untracked unlock window never happens
  // because unlock consults hold_timed_, not the live gate.
  mu.lock();
  SetTraceMode(TraceMode::kOff);
  mu.unlock();
  EXPECT_EQ(mu.hold_histogram().Count(), 1);
}

TEST(TrackedMutexTest, ContentionObservedAcrossThreads) {
  ModeGuard guard(TraceMode::kMetrics);
  TrackedMutex mu("test.contended");
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  std::int64_t shared = 0;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<TrackedMutex> lock(mu);
        ++shared;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared, kThreads * kIters);
  const TrackedMutex::Stats stats = mu.stats();
  EXPECT_EQ(stats.acquisitions, kThreads * kIters);
  EXPECT_GE(stats.contended, 0);
  EXPECT_LE(stats.contended, stats.acquisitions);
  EXPECT_EQ(mu.hold_histogram().Count(), stats.acquisitions);
  // Wait times are recorded exactly for the contended acquisitions.
  EXPECT_EQ(mu.wait_histogram().Count(), stats.contended);
}

TEST(TrackedMutexTest, PublishLockMetricsExportsGauges) {
  ModeGuard guard(TraceMode::kMetrics);
  TrackedMutex mu("test.publish");
  {
    std::lock_guard<TrackedMutex> lock(mu);
  }
  MetricRegistry reg;
  PublishLockMetrics(&reg);
  Gauge* acq = reg.GetGauge("lock.acquisitions", {{"lock", "test.publish"}});
  EXPECT_GE(acq->Value(), 1.0);
  // The global registry's own lock is itself tracked and shows up.
  Gauge* self =
      reg.GetGauge("lock.acquisitions", {{"lock", "metrics.registry"}});
  EXPECT_GE(self->Value(), 0.0);
  const std::string text = reg.WriteText();
  EXPECT_NE(text.find("lock_acquisitions{lock=\"test.publish\"}"),
            std::string::npos);
}

TEST(TrackedMutexTest, SameNameInstancesMergeWhenPublished) {
  ModeGuard guard(TraceMode::kMetrics);
  TrackedMutex a("test.shard");
  TrackedMutex b("test.shard");
  {
    std::lock_guard<TrackedMutex> lock(a);
  }
  {
    std::lock_guard<TrackedMutex> lock(b);
  }
  MetricRegistry reg;
  PublishLockMetrics(&reg);
  Gauge* acq = reg.GetGauge("lock.acquisitions", {{"lock", "test.shard"}});
  EXPECT_DOUBLE_EQ(acq->Value(), 2.0);
}

TEST(TrackedMutexTest, LockStatsJsonListsLiveLocks) {
  ModeGuard guard(TraceMode::kMetrics);
  TrackedMutex mu("test.jsonlock");
  {
    std::lock_guard<TrackedMutex> lock(mu);
  }
  const std::string json = LockStatsJson();
  EXPECT_NE(json.find("\"locks\":["), std::string::npos);
  EXPECT_NE(json.find("\"test.jsonlock\""), std::string::npos);
  EXPECT_NE(json.find("\"queues\":["), std::string::npos);
}

TEST(QueueDepthTest, TracksCurrentAndPeak) {
  ModeGuard guard(TraceMode::kMetrics);
  QueueDepth depth("test.queue");
  EXPECT_EQ(depth.current(), 0);
  {
    QueueDepth::Scope a(depth);
    {
      QueueDepth::Scope b(depth);
      EXPECT_EQ(depth.current(), 2);
    }
    EXPECT_EQ(depth.current(), 1);
  }
  EXPECT_EQ(depth.current(), 0);
  EXPECT_EQ(depth.peak(), 2);
}

TEST(QueueDepthTest, DisabledGateIsInert) {
  ModeGuard guard(TraceMode::kOff);
  QueueDepth depth("test.queue.off");
  {
    QueueDepth::Scope a(depth);
  }
  EXPECT_EQ(depth.current(), 0);
  EXPECT_EQ(depth.peak(), 0);
}

TEST(QueueDepthTest, GateFlipNeverReportsNegativeDepth) {
  ModeGuard guard(TraceMode::kOff);
  QueueDepth depth("test.queue.flip");
  depth.Enter();  // not counted
  SetTraceMode(TraceMode::kMetrics);
  depth.Exit();  // counted: raw counter dips to -1
  EXPECT_EQ(depth.current(), 0);  // clamped on read
}

/// Enables lock-order tracking for one test and resets the edge graph on
/// both ends. The tests below drive the detector through its hooks with
/// fake lock ids rather than real mutexes: the detection logic is identical
/// (the tracked slow paths call exactly these hooks), and TSan's own
/// lock-order checker would otherwise flag the deliberate ABBA pattern
/// before ours gets to report it.
class LockOrderGuard {
 public:
  LockOrderGuard() {
    SetLockOrderTracking(true);
    ResetLockOrderForTest();
  }
  ~LockOrderGuard() {
    ResetLockOrderForTest();
    SetLockOrderTracking(false);
  }
};

TEST(LockOrderTest, ConsistentOrderIsNeverReported) {
  LockOrderGuard guard;
  int a = 0;
  int b = 0;
  for (int i = 0; i < 3; ++i) {
    internal_obs::LockOrderOnAcquire(&a, "order.consistent.A");
    internal_obs::LockOrderOnAcquire(&b, "order.consistent.B");
    internal_obs::LockOrderOnRelease(&b);
    internal_obs::LockOrderOnRelease(&a);
  }
  // Acquiring B alone afterwards is also fine: no cycle, no report.
  internal_obs::LockOrderOnAcquire(&b, "order.consistent.B");
  internal_obs::LockOrderOnRelease(&b);
  EXPECT_TRUE(LockOrderInversions().empty());
}

TEST(LockOrderTest, AbbaInversionReportedOncePerPair) {
  LockOrderGuard guard;
  int a = 0;
  int b = 0;
  internal_obs::LockOrderOnAcquire(&a, "order.abba.A");
  internal_obs::LockOrderOnAcquire(&b, "order.abba.B");  // edge A -> B
  internal_obs::LockOrderOnRelease(&b);
  internal_obs::LockOrderOnRelease(&a);
  ASSERT_TRUE(LockOrderInversions().empty());

  internal_obs::LockOrderOnAcquire(&b, "order.abba.B");
  internal_obs::LockOrderOnAcquire(&a, "order.abba.A");  // closes the cycle
  internal_obs::LockOrderOnRelease(&a);
  internal_obs::LockOrderOnRelease(&b);

  std::vector<LockOrderInversion> inversions = LockOrderInversions();
  ASSERT_EQ(inversions.size(), 1u);
  EXPECT_EQ(inversions[0].first, "order.abba.B");
  EXPECT_EQ(inversions[0].second, "order.abba.A");

  // The same inverted pattern again must not produce a duplicate report.
  internal_obs::LockOrderOnAcquire(&b, "order.abba.B");
  internal_obs::LockOrderOnAcquire(&a, "order.abba.A");
  internal_obs::LockOrderOnRelease(&a);
  internal_obs::LockOrderOnRelease(&b);
  EXPECT_EQ(LockOrderInversions().size(), 1u);
}

TEST(LockOrderTest, TransitiveCycleIsDetected) {
  LockOrderGuard guard;
  int a = 0;
  int b = 0;
  int c = 0;
  // A -> B and B -> C establish a transitive A -> C order.
  internal_obs::LockOrderOnAcquire(&a, "order.chain.A");
  internal_obs::LockOrderOnAcquire(&b, "order.chain.B");
  internal_obs::LockOrderOnRelease(&b);
  internal_obs::LockOrderOnRelease(&a);
  internal_obs::LockOrderOnAcquire(&b, "order.chain.B");
  internal_obs::LockOrderOnAcquire(&c, "order.chain.C");
  internal_obs::LockOrderOnRelease(&c);
  internal_obs::LockOrderOnRelease(&b);
  ASSERT_TRUE(LockOrderInversions().empty());

  // C -> A closes the three-lock cycle even though A and C were never held
  // together before.
  internal_obs::LockOrderOnAcquire(&c, "order.chain.C");
  internal_obs::LockOrderOnAcquire(&a, "order.chain.A");
  internal_obs::LockOrderOnRelease(&a);
  internal_obs::LockOrderOnRelease(&c);
  const std::vector<LockOrderInversion> inversions = LockOrderInversions();
  ASSERT_EQ(inversions.size(), 1u);
  EXPECT_EQ(inversions[0].first, "order.chain.C");
  EXPECT_EQ(inversions[0].second, "order.chain.A");
}

TEST(LockOrderTest, JsonReportsEdgesAndInversions) {
  LockOrderGuard guard;
  int a = 0;
  int b = 0;
  internal_obs::LockOrderOnAcquire(&a, "order.json.A");
  internal_obs::LockOrderOnAcquire(&b, "order.json.B");
  internal_obs::LockOrderOnRelease(&b);
  internal_obs::LockOrderOnRelease(&a);
  internal_obs::LockOrderOnAcquire(&b, "order.json.B");
  internal_obs::LockOrderOnAcquire(&a, "order.json.A");
  internal_obs::LockOrderOnRelease(&a);
  internal_obs::LockOrderOnRelease(&b);

  const std::string json = LockOrderJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("order.json.B"), std::string::npos);
  EXPECT_NE(json.find("order.json.A"), std::string::npos);
  // The crash path's non-blocking variant agrees when uncontended.
  std::string try_json;
  ASSERT_TRUE(TryLockOrderJson(&try_json));
  EXPECT_EQ(try_json, json);
}

TEST(LockOrderTest, TrackedMutexGateEngagesWithMetricsOff) {
  ModeGuard mode(TraceMode::kOff);
  LockOrderGuard guard;
  EXPECT_TRUE(LockOrderTrackingEnabled());
  EXPECT_TRUE(internal_obs::LockTrackingEnabled());
  // A real TrackedMutex routes through the hooks without needing metrics;
  // one lock has no ordering to violate, so nothing is reported.
  TrackedMutex mu("order.gate");
  {
    std::lock_guard<TrackedMutex> lock(mu);
  }
  EXPECT_TRUE(LockOrderInversions().empty());
}

}  // namespace
}  // namespace obs
}  // namespace trmma
