#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "gen/network_gen.h"
#include "gen/presets.h"
#include "gen/traj_gen.h"
#include "graph/shortest_path.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(NetworkGenTest, RejectsTinyGrid) {
  NetworkGenConfig config;
  config.grid_width = 2;
  config.grid_height = 2;
  Rng rng(1);
  EXPECT_FALSE(GenerateNetwork(config, rng).ok());
}

TEST(NetworkGenTest, DeterministicForSeed) {
  NetworkGenConfig config;
  config.grid_width = 8;
  config.grid_height = 6;
  Rng rng1(5);
  Rng rng2(5);
  auto a = GenerateNetwork(config, rng1);
  auto b = GenerateNetwork(config, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()->num_nodes(), b.value()->num_nodes());
  EXPECT_EQ(a.value()->num_segments(), b.value()->num_segments());
}

/// Property: the generated network is strongly connected (any segment can
/// reach any other), across seeds.
class NetworkConnectivityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(NetworkConnectivityTest, StronglyConnected) {
  auto g = test::MakeCityNetwork(GetParam());
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 25; ++trial) {
    NodeId src = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    NodeId dst = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    EXPECT_TRUE(engine.NodeToNode(src, dst).found);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkConnectivityTest,
                         testing::Values(1, 2, 3, 7, 11, 13));

TEST(NetworkGenTest, SpeedsWithinConfiguredRange) {
  NetworkGenConfig config;
  config.grid_width = 8;
  config.grid_height = 8;
  Rng rng(3);
  auto g_or = GenerateNetwork(config, rng);
  ASSERT_TRUE(g_or.ok());
  const auto& g = *g_or.value();
  for (SegmentId i = 0; i < g.num_segments(); ++i) {
    EXPECT_GT(g.segment(i).speed_mps, 0.0);
    EXPECT_LT(g.segment(i).speed_mps, config.arterial_speed_mps * 1.2);
  }
}

// ---------------------------------------------------------------- TrajGen

class TrajGenFixture : public testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeCityNetwork(21);
    ASSERT_NE(network_, nullptr);
    config_.epsilon_s = 15.0;
    config_.min_route_length_m = 800.0;
    config_.max_route_length_m = 4000.0;
    config_.min_points = 8;
  }
  std::unique_ptr<RoadNetwork> network_;
  TrajGenConfig config_;
};

TEST_F(TrajGenFixture, PointsOnExactEpsilonGrid) {
  TrajectoryGenerator gen(*network_, config_);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    auto s = gen.Generate(rng);
    ASSERT_TRUE(s.ok());
    const auto& truth = s.value().truth;
    ASSERT_GE(truth.size(), static_cast<size_t>(config_.min_points));
    for (size_t i = 1; i < truth.size(); ++i) {
      EXPECT_NEAR(truth[i].t - truth[i - 1].t, config_.epsilon_s, 1e-6);
    }
  }
}

TEST_F(TrajGenFixture, RouteIsConnectedAndCoversTruth) {
  TrajectoryGenerator gen(*network_, config_);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    auto s = gen.Generate(rng);
    ASSERT_TRUE(s.ok());
    const auto& sample = s.value();
    EXPECT_TRUE(IsConnectedRoute(*network_, sample.route));
    std::set<SegmentId> route_set(sample.route.begin(), sample.route.end());
    for (const MatchedPoint& a : sample.truth) {
      EXPECT_EQ(route_set.count(a.segment), 1u);
    }
    EXPECT_EQ(sample.truth.back().segment, sample.route.back());
  }
}

TEST_F(TrajGenFixture, TruthSegmentsFollowRouteOrder) {
  TrajectoryGenerator gen(*network_, config_);
  Rng rng(6);
  auto s = gen.Generate(rng);
  ASSERT_TRUE(s.ok());
  const auto& sample = s.value();
  size_t cursor = 0;
  for (const MatchedPoint& a : sample.truth) {
    while (cursor < sample.route.size() && sample.route[cursor] != a.segment) {
      ++cursor;
    }
    ASSERT_LT(cursor, sample.route.size());
  }
}

TEST_F(TrajGenFixture, RatiosInHalfOpenUnitInterval) {
  TrajectoryGenerator gen(*network_, config_);
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    auto s = gen.Generate(rng);
    ASSERT_TRUE(s.ok());
    for (const MatchedPoint& a : s.value().truth) {
      EXPECT_GE(a.ratio, 0.0);
      EXPECT_LT(a.ratio, 1.0);
    }
  }
}

TEST_F(TrajGenFixture, GpsNoiseIsBounded) {
  config_.gps_noise_sigma_m = 5.0;
  config_.canyon_bias_m = 6.0;
  TrajectoryGenerator gen(*network_, config_);
  Rng rng(8);
  auto s = gen.Generate(rng);
  ASSERT_TRUE(s.ok());
  const auto& sample = s.value();
  double total = 0.0;
  for (size_t i = 0; i < sample.truth.size(); ++i) {
    const Vec2 truth_xy = network_->PointOnSegment(sample.truth[i].segment,
                                                   sample.truth[i].ratio);
    const Vec2 obs_xy =
        network_->projection().ToMeters(sample.raw.points[i].pos);
    const double err = (obs_xy - truth_xy).Norm();
    total += err;
    EXPECT_LT(err, 6.0 + 6.0 * 5.0);  // bias + 6 sigma
  }
  EXPECT_GT(total / sample.truth.size(), 1.0);  // noise actually applied
}

TEST_F(TrajGenFixture, RouteLengthWithinConfiguredBand) {
  TrajectoryGenerator gen(*network_, config_);
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    auto s = gen.Generate(rng);
    ASSERT_TRUE(s.ok());
    // The driven route can exceed the shortest-path band via detours, but
    // not the absolute cap.
    EXPECT_LE(RouteLength(*network_, s.value().route),
              config_.max_route_length_m * 1.01);
  }
}

// ---------------------------------------------------------------- Presets

TEST(PresetTest, AllCityNamesResolve) {
  for (const std::string& name : CityNames()) {
    EXPECT_TRUE(GetCityPreset(name).ok()) << name;
  }
  EXPECT_FALSE(GetCityPreset("LA").ok());
}

TEST(PresetTest, BjIsLargestNetworkWithCoarsestRate) {
  auto bj = GetCityPreset("BJ").value();
  auto xa = GetCityPreset("XA").value();
  EXPECT_GT(bj.net.grid_width * bj.net.grid_height,
            xa.net.grid_width * xa.net.grid_height);
  EXPECT_GT(bj.traj.epsilon_s, xa.traj.epsilon_s);
}

TEST(PresetTest, BuildsDatasetWithSplits) {
  Dataset ds = test::MakeTinyDataset("CD", 25);
  EXPECT_EQ(ds.name, "CD");
  EXPECT_EQ(ds.samples.size(), 25u);
  EXPECT_FALSE(ds.train_idx.empty());
  EXPECT_FALSE(ds.test_idx.empty());
  ASSERT_NE(ds.network, nullptr);
  EXPECT_GT(ds.network->num_segments(), 100);
  for (const auto& sample : ds.samples) {
    EXPECT_GE(sample.sparse.size(), 2);
    EXPECT_EQ(sample.raw.size(), static_cast<int>(sample.truth.size()));
  }
}

TEST(PresetTest, DatasetGenerationIsDeterministic) {
  Dataset a = test::MakeTinyDataset("XA", 8);
  Dataset b = test::MakeTinyDataset("XA", 8);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].route, b.samples[i].route);
    EXPECT_EQ(a.samples[i].sparse_indices, b.samples[i].sparse_indices);
  }
}

}  // namespace
}  // namespace trmma
