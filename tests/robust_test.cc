#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/csv.h"
#include "common/fault_points.h"
#include "graph/transition_stats.h"
#include "mm/candidates.h"
#include "mm/hmm.h"
#include "mm/nearest.h"
#include "mm/route_stitch.h"
#include "recovery/linear.h"
#include "recovery/trmma.h"
#include "robust/fault_injection.h"
#include "robust/pipeline.h"
#include "robust/sanitize.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Straight eastward drive near the center of a network (the projection is
/// centroid-centered): speed-feasible, strictly increasing timestamps, well
/// inside the bbox.
Trajectory MakeCleanTrajectory(const RoadNetwork& network, int n = 4,
                               double dt = 10.0) {
  Trajectory traj;
  for (int i = 0; i < n; ++i) {
    GpsPoint p;
    p.pos = network.projection().ToLatLng(Vec2{20.0 + 30.0 * i, 5.0});
    p.t = i * dt;
    traj.points.push_back(p);
  }
  return traj;
}

/// Two road clusters ~50 km apart with no connecting segment, so any route
/// between them is unroutable within the stitcher's budget.
std::unique_ptr<RoadNetwork> MakeDisconnectedNetwork() {
  auto g = std::make_unique<RoadNetwork>();
  const LocalProjection proj(LatLng{31.0, 121.0});
  for (double x : {0.0, 100.0, 200.0}) {
    g->AddNode(proj.ToLatLng(Vec2{x, 0.0}));
  }
  for (double x : {50000.0, 50100.0, 50200.0}) {
    g->AddNode(proj.ToLatLng(Vec2{x, 0.0}));
  }
  (void)g->AddSegment(0, 1, 10.0);  // seg 0 (cluster A)
  (void)g->AddSegment(1, 2, 10.0);  // seg 1 (cluster A)
  (void)g->AddSegment(3, 4, 10.0);  // seg 2 (cluster B)
  (void)g->AddSegment(4, 5, 10.0);  // seg 3 (cluster B)
  EXPECT_TRUE(g->Finalize().ok());
  return g;
}

/// Matcher that fails to place every point; drives the total-failure path.
class HopelessMatcher : public MapMatcher {
 public:
  std::vector<SegmentId> MatchPoints(const Trajectory& traj) override {
    return std::vector<SegmentId>(traj.size(), kInvalidSegment);
  }
  std::string name() const override { return "Hopeless"; }
};

// --------------------------------------------------------------- Sanitizer

class SanitizeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() { grid_ = test::MakeGrid(5, 5).release(); }
  static void TearDownTestSuite() { delete grid_; }
  static RoadNetwork* grid_;
};
RoadNetwork* SanitizeTest::grid_ = nullptr;

TEST_F(SanitizeTest, CleanInputPassesThroughUntouched) {
  const Trajectory traj = MakeCleanTrajectory(*grid_);
  SanitizeReport report;
  auto pieces = SanitizeTrajectory(traj, SanitizeConfig::ForNetwork(*grid_),
                                   &report);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), traj.size());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.contiguous());
  EXPECT_EQ(report.input_points, traj.size());
}

TEST_F(SanitizeTest, DropPolicyRemovesNonFinitePoints) {
  Trajectory traj = MakeCleanTrajectory(*grid_);
  traj.points[1].pos.lat = kNan;
  SanitizeReport report;
  auto pieces = SanitizeTrajectory(traj, SanitizeConfig::ForNetwork(*grid_),
                                   &report);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), traj.size() - 1);
  EXPECT_EQ(report.nonfinite, 1);
  EXPECT_EQ(report.dropped, 1);
  EXPECT_FALSE(report.clean());
}

TEST_F(SanitizeTest, OutOfBboxDropAndClamp) {
  Trajectory traj = MakeCleanTrajectory(*grid_);
  // 5x5 grid nodes span [-200,200]m around the centroid; margin is 1000m.
  // 10km is far outside.
  traj.points[2].pos = grid_->projection().ToLatLng(Vec2{10000.0, 10000.0});

  SanitizeConfig drop = SanitizeConfig::ForNetwork(*grid_);
  SanitizeReport report;
  auto pieces = SanitizeTrajectory(traj, drop, &report);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), traj.size() - 1);
  EXPECT_EQ(report.out_of_bbox, 1);

  SanitizeConfig clamp = drop;
  clamp.policy = RepairPolicy::kClamp;
  // Disable the speed rule so only the bbox clamp is observed.
  clamp.max_speed_mps = 1e9;
  pieces = SanitizeTrajectory(traj, clamp, &report);
  ASSERT_EQ(pieces.size(), 1u);
  ASSERT_EQ(pieces[0].size(), traj.size());
  EXPECT_EQ(report.clamped, 1);
  const Vec2 xy = grid_->projection().ToMeters(pieces[0].points[2].pos);
  EXPECT_LE(xy.x, 1200.0 + 1e-6);
  EXPECT_LE(xy.y, 1200.0 + 1e-6);
}

TEST_F(SanitizeTest, NonMonotonicTimestampDropAndSplit) {
  Trajectory traj = MakeCleanTrajectory(*grid_);
  traj.points[2].t = traj.points[1].t - 1.0;  // goes back in time

  SanitizeReport report;
  auto pieces = SanitizeTrajectory(traj, SanitizeConfig::ForNetwork(*grid_),
                                   &report);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), traj.size() - 1);
  EXPECT_EQ(report.non_monotonic, 1);

  SanitizeConfig split = SanitizeConfig::ForNetwork(*grid_);
  split.policy = RepairPolicy::kSplit;
  pieces = SanitizeTrajectory(traj, split, &report);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(report.splits, 1);
  EXPECT_EQ(pieces[0].size() + pieces[1].size(), traj.size());
  for (const Trajectory& piece : pieces) {
    for (int i = 1; i < piece.size(); ++i) {
      EXPECT_GT(piece.points[i].t, piece.points[i - 1].t);
    }
  }
}

TEST_F(SanitizeTest, SpeedViolationClampLimitsDistance) {
  Trajectory traj = MakeCleanTrajectory(*grid_);
  // Teleport: 1130m in 10s with a 50 m/s limit (500m max). Still inside the
  // bbox (+1000m margin), so only the speed rule fires.
  traj.points[1].pos = grid_->projection().ToLatLng(Vec2{1150.0, 5.0});

  SanitizeConfig clamp = SanitizeConfig::ForNetwork(*grid_);
  clamp.policy = RepairPolicy::kClamp;
  SanitizeReport report;
  auto pieces = SanitizeTrajectory(traj, clamp, &report);
  ASSERT_EQ(pieces.size(), 1u);
  ASSERT_EQ(pieces[0].size(), traj.size());
  EXPECT_EQ(report.speed_violations, 1);
  EXPECT_GE(report.clamped, 1);
  const Vec2 a = grid_->projection().ToMeters(pieces[0].points[0].pos);
  const Vec2 b = grid_->projection().ToMeters(pieces[0].points[1].pos);
  EXPECT_NEAR((b - a).Norm(), 500.0, 1e-6);
}

TEST_F(SanitizeTest, ShortPiecesAreDiscarded) {
  Trajectory traj;
  for (int i = 0; i < 3; ++i) {
    GpsPoint p;
    p.pos = grid_->projection().ToLatLng(Vec2{20.0 + 3000.0 * i, 5.0});
    p.t = i * 10.0;
    traj.points.push_back(p);
  }
  // Every hop teleports, so kSplit produces three 1-point pieces — all
  // below min_points and discarded.
  SanitizeConfig split = SanitizeConfig::ForNetwork(*grid_);
  split.policy = RepairPolicy::kSplit;
  split.bbox_margin_m = 1e7;
  SanitizeReport report;
  auto pieces = SanitizeTrajectory(traj, split, &report);
  EXPECT_TRUE(pieces.empty());
  EXPECT_EQ(report.discarded_points, 3);
  EXPECT_FALSE(report.contiguous());
}

TEST_F(SanitizeTest, WorksWithoutNetwork) {
  Trajectory traj;
  for (int i = 0; i < 3; ++i) {
    GpsPoint p;
    p.pos = LatLng{31.0 + i * 1e-4, 121.0};
    p.t = i * 10.0;
    traj.points.push_back(p);
  }
  traj.points[1].t = kNan;
  SanitizeReport report;
  auto pieces = SanitizeTrajectory(traj, SanitizeConfig{}, &report);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), 2);
  EXPECT_EQ(report.nonfinite, 1);
}

// --------------------------------------------------------- Fault injection

TEST(FaultInjectionTest, DisabledByDefault) {
  FaultInjectionConfig config;
  EXPECT_FALSE(config.AnyEnabled());
  FaultInjector injector(config);
  Trajectory traj = MakeCleanTrajectory(*test::MakeGrid(3, 3));
  const Trajectory before = traj;
  injector.CorruptTrajectory(&traj);
  ASSERT_EQ(traj.size(), before.size());
  for (int i = 0; i < traj.size(); ++i) {
    EXPECT_EQ(traj.points[i].pos.lat, before.points[i].pos.lat);
    EXPECT_EQ(traj.points[i].t, before.points[i].t);
  }
}

TEST(FaultInjectionTest, CorruptionIsDeterministic) {
  FaultInjectionConfig config;
  config.coord_spike_prob = 0.3;
  config.coord_nan_prob = 0.2;
  config.drop_point_prob = 0.2;
  config.ts_shuffle_prob = 0.5;
  config.seed = 77;

  auto grid = test::MakeGrid(4, 4);
  Trajectory a = MakeCleanTrajectory(*grid, 20);
  Trajectory b = a;
  FaultInjector first(config);
  FaultInjector second(config);
  first.CorruptTrajectory(&a);
  second.CorruptTrajectory(&b);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    // NaN != NaN, so compare bit-for-bit via ==-or-both-NaN.
    EXPECT_TRUE(a.points[i].pos.lat == b.points[i].pos.lat ||
                (std::isnan(a.points[i].pos.lat) &&
                 std::isnan(b.points[i].pos.lat)));
    EXPECT_EQ(a.points[i].pos.lng, b.points[i].pos.lng);
    EXPECT_EQ(a.points[i].t, b.points[i].t);
  }
}

TEST(FaultInjectionTest, CertainRatesAlwaysFire) {
  auto grid = test::MakeGrid(3, 3);
  Trajectory traj = MakeCleanTrajectory(*grid, 10);

  FaultInjectionConfig nan_all;
  nan_all.coord_nan_prob = 1.0;
  FaultInjector nans(nan_all);
  Trajectory t1 = traj;
  nans.CorruptTrajectory(&t1);
  for (const GpsPoint& p : t1.points) EXPECT_TRUE(std::isnan(p.pos.lat));

  FaultInjectionConfig drop_all;
  drop_all.drop_point_prob = 1.0;
  FaultInjector drops(drop_all);
  Trajectory t2 = traj;
  drops.CorruptTrajectory(&t2);
  EXPECT_TRUE(t2.empty());
}

TEST(FaultInjectionTest, FromEnvParsesKnownKeysAndIgnoresJunk) {
  setenv("TRMMA_FAULTS",
         "coord_spike=0.25,seed=42,spike_m=1234,not_a_key=1,garbage,ts_shuffle=oops",
         1);
  FaultInjectionConfig config = FaultInjectionConfig::FromEnv();
  unsetenv("TRMMA_FAULTS");
  EXPECT_DOUBLE_EQ(config.coord_spike_prob, 0.25);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.spike_m, 1234.0);
  EXPECT_DOUBLE_EQ(config.ts_shuffle_prob, 0.0);  // malformed value ignored
  EXPECT_TRUE(config.AnyEnabled());
}

TEST(FaultInjectionTest, InstalledInjectorFailsCsvReads) {
  const std::string path = testing::TempDir() + "/trmma_robust_iofail.csv";
  ASSERT_TRUE(csv::WriteFile(path, {{"a", "b"}}).ok());

  FaultInjectionConfig config;
  config.io_fail_prob = 1.0;
  FaultInjector injector(config);
  injector.Install();
  auto read = csv::ReadFile(path);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  FaultInjector::Uninstall();
  EXPECT_TRUE(csv::ReadFile(path).ok());
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CorruptCsvDamagesRows) {
  FaultInjectionConfig config;
  config.csv_truncate_prob = 1.0;
  FaultInjector injector(config);
  const std::string text = "PT,31.00,121.00,10,3,0.5\nPT,31.01,121.01,20,4,0.6\n";
  const std::string corrupted = injector.CorruptCsv(text);
  EXPECT_NE(corrupted, text);
}

// ----------------------------------------------------- Graceful degradation

TEST(DegradationTest, CandidatesWidenWhenPrimaryQueryIsEmpty) {
  auto grid = test::MakeGrid(5, 5);
  SegmentRTree index(*grid);
  Trajectory traj = MakeCleanTrajectory(*grid, 3);
  // kc=0 makes the primary k-NN return nothing; the widening ladder must
  // still produce one candidate per point.
  auto candidates = ComputeCandidates(*grid, index, traj, 0);
  ASSERT_EQ(candidates.size(), 3u);
  for (const auto& c : candidates) {
    ASSERT_EQ(c.size(), 1u);
    EXPECT_NE(c[0].segment, kInvalidSegment);
  }
}

TEST(DegradationTest, CandidatesRepairNonFinitePoints) {
  auto grid = test::MakeGrid(5, 5);
  SegmentRTree index(*grid);
  Trajectory traj = MakeCleanTrajectory(*grid, 4);
  traj.points[2].pos.lat = kNan;
  auto candidates = ComputeCandidates(*grid, index, traj, 3);
  ASSERT_EQ(candidates.size(), 4u);
  for (const auto& c : candidates) EXPECT_FALSE(c.empty());
}

TEST(DegradationTest, HmmSurvivesNonFinitePoint) {
  auto grid = test::MakeGrid(5, 5);
  SegmentRTree index(*grid);
  HmmMatcher matcher(*grid, index, HmmConfig{});
  Trajectory traj = MakeCleanTrajectory(*grid, 4);
  traj.points[1].pos.lng = kNan;
  const auto segs = matcher.MatchPoints(traj);
  ASSERT_EQ(segs.size(), 4u);
  for (SegmentId s : segs) EXPECT_NE(s, kInvalidSegment);
}

TEST(DegradationTest, StitchSplitsSectionsAtUnroutablePairs) {
  auto net = MakeDisconnectedNetwork();
  TransitionStats stats(*net);
  DaRoutePlanner planner(*net, stats);
  ShortestPathEngine engine(*net);

  const std::vector<SegmentId> segs = {0, 1, 2, 3};
  auto sections = StitchRouteSections(*net, planner, engine, segs);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].first_point, 0);
  EXPECT_EQ(sections[0].last_point, 1);
  EXPECT_EQ(sections[0].route, (Route{0, 1}));
  EXPECT_EQ(sections[1].first_point, 2);
  EXPECT_EQ(sections[1].last_point, 3);
  EXPECT_EQ(sections[1].route, (Route{2, 3}));

  // The flat StitchRoute stays the concatenation of the sections.
  EXPECT_EQ(StitchRoute(*net, planner, engine, segs), (Route{0, 1, 2, 3}));
}

TEST(DegradationTest, StitchAttachesUnmatchedPointsToOpenSection) {
  auto net = MakeDisconnectedNetwork();
  TransitionStats stats(*net);
  DaRoutePlanner planner(*net, stats);
  ShortestPathEngine engine(*net);

  const std::vector<SegmentId> segs = {kInvalidSegment, 0, kInvalidSegment, 1};
  auto sections = StitchRouteSections(*net, planner, engine, segs);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].first_point, 1);
  EXPECT_EQ(sections[0].last_point, 3);
  EXPECT_EQ(sections[0].route, (Route{0, 1}));
}

TEST(DegradationTest, TryRecoverSplitsAndGapFillsDisconnectedInput) {
  auto net = MakeDisconnectedNetwork();
  SegmentRTree index(*net);
  NearestMatcher matcher(*net, index);
  TransitionStats stats(*net);
  DaRoutePlanner planner(*net, stats);
  ShortestPathEngine engine(*net);
  TrmmaConfig config;
  config.dh = 16;
  config.trans_ffn = 32;
  TrmmaRecovery trmma(*net, &matcher, &planner, &engine, config);

  // Two observations per cluster; ε=15 ⇒ the full grid is t=0,15,...,90.
  // Use the same projection the nodes were built with (the network's own
  // is centroid-centered, halfway between the clusters).
  Trajectory sparse;
  const LocalProjection proj(LatLng{31.0, 121.0});
  for (double x : {50.0, 150.0}) {
    sparse.points.push_back(
        GpsPoint{proj.ToLatLng(Vec2{x, 1.0}), x == 50.0 ? 0.0 : 30.0});
  }
  for (double x : {50050.0, 50150.0}) {
    sparse.points.push_back(
        GpsPoint{proj.ToLatLng(Vec2{x, 1.0}), x == 50050.0 ? 60.0 : 90.0});
  }

  RecoverStats rec_stats;
  auto rec = trmma.TryRecover(sparse, 15.0, &rec_stats);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec_stats.route_sections, 2);
  EXPECT_GE(rec_stats.degraded_points, 1);
  ASSERT_EQ(rec->size(), 7u);
  for (size_t i = 0; i < rec->size(); ++i) {
    EXPECT_NEAR((*rec)[i].t, 15.0 * i, 1e-9);
    EXPECT_GE((*rec)[i].segment, 0);
    EXPECT_LT((*rec)[i].segment, net->num_segments());
  }
  // The reference path degrades identically.
  RecoverStats ref_stats;
  auto ref = trmma.TryRecoverReference(sparse, 15.0, &ref_stats);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->size(), rec->size());
  EXPECT_EQ(ref_stats.route_sections, 2);
}

TEST(DegradationTest, TryRecoverReportsTotalMatchFailure) {
  auto grid = test::MakeGrid(4, 4);
  HopelessMatcher matcher;
  TransitionStats stats(*grid);
  DaRoutePlanner planner(*grid, stats);
  ShortestPathEngine engine(*grid);
  TrmmaConfig config;
  config.dh = 16;
  config.trans_ffn = 32;
  TrmmaRecovery trmma(*grid, &matcher, &planner, &engine, config);

  const Trajectory sparse = MakeCleanTrajectory(*grid, 3);
  auto rec = trmma.TryRecover(sparse, 10.0);
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
  // The legacy interface must not abort either: it logs and returns empty.
  EXPECT_TRUE(trmma.Recover(sparse, 10.0).empty());
}

// ----------------------------------------------------------------- Pipeline

TEST(PipelineTest, ClassifiesOutcomesAndCountsEveryInput) {
  auto grid = test::MakeGrid(5, 5);
  SegmentRTree index(*grid);
  NearestMatcher matcher(*grid, index);
  TransitionStats stats(*grid);
  DaRoutePlanner planner(*grid, stats);
  ShortestPathEngine engine(*grid);
  LinearRecovery linear(*grid, &matcher, &planner, &engine, "Linear");

  PipelineConfig config;
  config.sanitize = SanitizeConfig::ForNetwork(*grid);
  config.sanitize.policy = RepairPolicy::kSplit;
  config.epsilon = 10.0;
  RobustRecoveryPipeline pipeline(&linear, config);

  // 1) Clean input.
  PipelineResult ok = pipeline.Run(MakeCleanTrajectory(*grid));
  EXPECT_EQ(ok.outcome, RecoveryOutcome::kOk);
  EXPECT_FALSE(ok.recovered.empty());

  // 2) One NaN point: repaired (dropped) but fully recovered.
  Trajectory nan_traj = MakeCleanTrajectory(*grid);
  nan_traj.points[1].pos.lat = kNan;
  PipelineResult repaired = pipeline.Run(nan_traj);
  EXPECT_EQ(repaired.outcome, RecoveryOutcome::kRepaired);
  EXPECT_FALSE(repaired.recovered.empty());

  // 3) Mid-trajectory teleport (900m in 10s, but still inside the bbox so
  // only the speed rule fires): split, so degraded.
  Trajectory split_traj;
  for (int i = 0; i < 4; ++i) {
    GpsPoint p;
    const double x = 20.0 + 30.0 * i + (i >= 2 ? 900.0 : 0.0);
    p.pos = grid->projection().ToLatLng(Vec2{x, 5.0});
    p.t = i * 10.0;
    split_traj.points.push_back(p);
  }
  PipelineResult degraded = pipeline.Run(split_traj);
  EXPECT_EQ(degraded.outcome, RecoveryOutcome::kDegraded);
  EXPECT_FALSE(degraded.recovered.empty());

  // 4) All-garbage input: failed, with a recorded reason.
  Trajectory garbage;
  for (int i = 0; i < 3; ++i) {
    garbage.points.push_back(GpsPoint{LatLng{kNan, kNan}, i * 10.0});
  }
  PipelineResult failed = pipeline.Run(garbage);
  EXPECT_EQ(failed.outcome, RecoveryOutcome::kFailed);
  EXPECT_TRUE(failed.recovered.empty());
  EXPECT_FALSE(failed.error.empty());

  const PipelineCounters& counters = pipeline.counters();
  EXPECT_EQ(counters.ok, 1);
  EXPECT_EQ(counters.repaired, 1);
  EXPECT_EQ(counters.degraded, 1);
  EXPECT_EQ(counters.failed, 1);
  EXPECT_EQ(counters.total(), 4);
}

TEST(PipelineTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(RecoveryOutcomeName(RecoveryOutcome::kOk), "ok");
  EXPECT_STREQ(RecoveryOutcomeName(RecoveryOutcome::kRepaired), "repaired");
  EXPECT_STREQ(RecoveryOutcomeName(RecoveryOutcome::kDegraded), "degraded");
  EXPECT_STREQ(RecoveryOutcomeName(RecoveryOutcome::kFailed), "failed");
}

}  // namespace
}  // namespace trmma
