#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(SetMetricsTest, PerfectMatch) {
  SetMetrics m = SegmentSetMetrics({1, 2, 3}, {3, 2, 1});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.jaccard, 1.0);
}

TEST(SetMetricsTest, PartialOverlap) {
  // pred {1,2,3,4}, truth {3,4,5,6}: inter 2, union 6.
  SetMetrics m = SegmentSetMetrics({1, 2, 3, 4}, {3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
  EXPECT_NEAR(m.jaccard, 2.0 / 6.0, 1e-12);
}

TEST(SetMetricsTest, DuplicatesCollapse) {
  SetMetrics m = SegmentSetMetrics({1, 1, 1, 2}, {1, 2});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(SetMetricsTest, EmptyPrediction) {
  SetMetrics m = SegmentSetMetrics({}, {1, 2});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(SetMetricsTest, AccumulateAndAverage) {
  SetMetrics sum;
  sum += SegmentSetMetrics({1}, {1});
  sum += SegmentSetMetrics({2}, {3});
  SetMetrics avg = sum / 2.0;
  EXPECT_DOUBLE_EQ(avg.precision, 0.5);
  EXPECT_DOUBLE_EQ(avg.f1, 0.5);
}

TEST(PointwiseAccuracyTest, ExactAndPartial) {
  MatchedTrajectory truth = {{1, 0.1, 0}, {2, 0.2, 15}, {3, 0.3, 30}};
  MatchedTrajectory same = truth;
  EXPECT_DOUBLE_EQ(PointwiseAccuracy(same, truth), 1.0);
  MatchedTrajectory half = truth;
  half[1].segment = 9;
  EXPECT_NEAR(PointwiseAccuracy(half, truth), 2.0 / 3.0, 1e-12);
}

TEST(PointwiseAccuracyTest, ShortPredictionPenalized) {
  MatchedTrajectory truth = {{1, 0, 0}, {2, 0, 1}, {3, 0, 2}, {4, 0, 3}};
  MatchedTrajectory pred = {{1, 0, 0}, {2, 0, 1}};
  EXPECT_DOUBLE_EQ(PointwiseAccuracy(pred, truth), 0.5);
}

TEST(PointwiseAccuracyTest, EmptyTruthIsZero) {
  EXPECT_DOUBLE_EQ(PointwiseAccuracy({}, {}), 0.0);
}

TEST(DistanceErrorsTest, IdenticalTrajectoriesZero) {
  Dataset ds = test::MakeTinyDataset("XA", 4);
  ShortestPathEngine engine(*ds.network);
  const auto& truth = ds.samples[0].truth;
  auto err = RecoveryDistanceErrors(*ds.network, engine, truth, truth);
  EXPECT_NEAR(err.mae, 0.0, 1e-6);
  EXPECT_NEAR(err.rmse, 0.0, 1e-6);
}

TEST(DistanceErrorsTest, ShiftedPointHasItsOffset) {
  Dataset ds = test::MakeTinyDataset("XA", 4);
  ShortestPathEngine engine(*ds.network);
  MatchedTrajectory truth = {ds.samples[0].truth[0]};
  MatchedTrajectory pred = truth;
  // Move the prediction 30% of the segment forward.
  const double len = ds.network->segment(truth[0].segment).length_m;
  pred[0].ratio = std::min(truth[0].ratio + 0.3, 0.99);
  const double expect = (pred[0].ratio - truth[0].ratio) * len;
  auto err = RecoveryDistanceErrors(*ds.network, engine, pred, truth);
  EXPECT_NEAR(err.mae, expect, 1e-6);
  EXPECT_NEAR(err.rmse, expect, 1e-6);
}

TEST(DistanceErrorsTest, MissingPredictionsCountAsCap) {
  Dataset ds = test::MakeTinyDataset("XA", 4);
  ShortestPathEngine engine(*ds.network);
  MatchedTrajectory truth = {ds.samples[0].truth[0], ds.samples[0].truth[1]};
  MatchedTrajectory pred = {truth[0]};
  auto err = RecoveryDistanceErrors(*ds.network, engine, pred, truth, 500.0);
  EXPECT_NEAR(err.mae, 250.0, 1e-6);
}

TEST(DistanceErrorsTest, SymmetricDirectionUsed) {
  // A prediction slightly BEHIND the truth on the same segment should cost
  // its small backward distance, not a loop around the block.
  Dataset ds = test::MakeTinyDataset("XA", 4);
  ShortestPathEngine engine(*ds.network);
  MatchedPoint t = ds.samples[0].truth[3];
  t.ratio = 0.5;
  MatchedPoint p = t;
  p.ratio = 0.4;
  const double len = ds.network->segment(t.segment).length_m;
  auto err = RecoveryDistanceErrors(*ds.network, engine, {p}, {t});
  EXPECT_NEAR(err.mae, 0.1 * len, 1e-6);
}

TEST(RmseAtLeastMae, Property) {
  Dataset ds = test::MakeTinyDataset("XA", 6);
  ShortestPathEngine engine(*ds.network);
  const auto& truth = ds.samples[1].truth;
  MatchedTrajectory pred = truth;
  // Perturb ratios.
  for (size_t i = 0; i < pred.size(); i += 2) {
    pred[i].ratio = std::min(0.99, pred[i].ratio + 0.2);
  }
  auto err = RecoveryDistanceErrors(*ds.network, engine, pred, truth);
  EXPECT_GE(err.rmse, err.mae - 1e-9);
}

}  // namespace
}  // namespace trmma
