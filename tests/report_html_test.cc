#include "eval/report_html.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "obs/json_parse.h"

#ifndef TRMMA_GOLDEN_DIR
#define TRMMA_GOLDEN_DIR "tests/golden"
#endif

namespace trmma {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string TrimTrailing(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

/// Two hand-written runs: an older one without quality/memory sections and
/// a newer one with groups + drift + memory. Every field is fixed, so the
/// payload is byte-stable and safe to pin in a golden file.
std::vector<BenchRunSummary> MakeRuns() {
  BenchRunSummary old_run;
  old_run.file = "BENCH_table5_mm_quality.json";
  old_run.name = "table5_mm_quality";
  old_run.created_unix = 1700000000;
  old_run.wall_seconds = 12.5;
  // quality left null-typed: a report that predates the quality section.

  BenchRunSummary new_run;
  new_run.file = "BENCH_table5_mm_quality.2.json";
  new_run.name = "table5_mm_quality";
  new_run.created_unix = 1700086400;
  new_run.wall_seconds = 11.25;
  auto parsed = obs::ParseJson(R"({
    "groups": [{
      "kind": "mm", "method": "MMA", "city": "PT",
      "requests": 4, "scored": 4,
      "mean_quality": 0.625, "min_quality": 0.25, "max_quality": 1,
      "slices": [
        {"dimension": "epsilon", "bucket": "<=60s",
         "requests": 4, "scored": 4, "mean_quality": 0.625}
      ],
      "calibration": {
        "samples": 8, "dropped_nonfinite": 1, "dropped_out_of_range": 0,
        "ece": 0.125, "brier": 0.1875,
        "bins": [{"lo": 0.5, "hi": 0.75, "count": 8,
                  "mean_confidence": 0.625, "accuracy": 0.75}],
        "chosen_rank": [8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "truth_rank": [6, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0]
      }
    }],
    "drift": [{"feature": "gap_seconds", "train": 128, "serve": 64,
               "psi": 0.04, "degenerate": false}]
  })");
  EXPECT_TRUE(parsed.ok());
  new_run.quality = *parsed;
  auto memory = obs::ParseJson(R"({
    "rss_bytes": 104857600, "rss_peak_bytes": 134217728,
    "subsystems": [
      {"name": "graph", "current_bytes": 4096, "peak_bytes": 4096,
       "events": 1},
      {"name": "ubodt", "current_bytes": 65536, "peak_bytes": 98304,
       "events": 3}
    ]
  })");
  EXPECT_TRUE(memory.ok());
  new_run.memory = *memory;
  return {old_run, new_run};
}

TEST(ReportHtmlTest, PayloadMatchesGoldenFile) {
  const std::string payload = BuildDashboardPayload(MakeRuns());
  const std::string golden_path =
      std::string(TRMMA_GOLDEN_DIR) + "/dashboard_payload.json";
  if (std::getenv("TRMMA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << payload << "\n";
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }
  const std::string golden = ReadFile(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path
      << " (regenerate with TRMMA_UPDATE_GOLDEN=1)";
  EXPECT_EQ(TrimTrailing(golden), payload)
      << "dashboard payload drifted from the golden file; if intentional, "
         "regenerate with TRMMA_UPDATE_GOLDEN=1";
}

TEST(ReportHtmlTest, PayloadRoundTripsAndPreservesQuality) {
  const std::string payload = BuildDashboardPayload(MakeRuns());
  auto doc = obs::ParseJson(payload);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const auto& runs = doc->Get("runs").AsArray();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_TRUE(runs[0].Get("quality").is_null());
  const obs::JsonValue& quality = runs[1].Get("quality");
  ASSERT_TRUE(quality.is_object());
  EXPECT_EQ(quality.Get("groups").AsArray().size(), 1u);
  EXPECT_DOUBLE_EQ(quality.Get("groups").AsArray()[0]
                       .Get("mean_quality").AsNumber(), 0.625);
  EXPECT_EQ(quality.Get("drift").AsArray()[0]
                .Get("feature").AsString(), "gap_seconds");
  EXPECT_TRUE(runs[0].Get("memory").is_null());
  const obs::JsonValue& memory = runs[1].Get("memory");
  ASSERT_TRUE(memory.is_object());
  EXPECT_DOUBLE_EQ(memory.Get("rss_peak_bytes").AsNumber(), 134217728.0);
  ASSERT_EQ(memory.Get("subsystems").AsArray().size(), 2u);
  EXPECT_EQ(memory.Get("subsystems").AsArray()[1]
                .Get("name").AsString(), "ubodt");
}

TEST(ReportHtmlTest, WriteJsonValueIsDeterministic) {
  // Keys re-serialize sorted regardless of input order, and values
  // round-trip through the writer's canonical number formatting.
  auto a = obs::ParseJson(R"({"b": 2, "a": [true, null, "x\n"], "c": 0.1})");
  auto b = obs::ParseJson(R"({"c": 0.1, "a": [true, null, "x\n"], "b": 2})");
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string out = WriteJsonValue(*a);
  EXPECT_EQ(out, WriteJsonValue(*b));
  EXPECT_EQ(out, R"({"a":[true,null,"x\n"],"b":2,"c":0.1})");
}

TEST(ReportHtmlTest, DashboardEmbedsEscapedPayload) {
  const std::string html = RenderQualityDashboard(MakeRuns());
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  // The payload is embedded in a JSON script island with "</" escaped so
  // no report string can terminate the block early.
  const std::size_t island =
      html.find("<script type=\"application/json\" id=\"payload\">");
  ASSERT_NE(island, std::string::npos);
  const std::size_t end = html.find("</script>", island);
  ASSERT_NE(end, std::string::npos);
  const std::string embedded = html.substr(island, end - island);
  EXPECT_EQ(embedded.find("</", 1), std::string::npos);
  // Structural landmarks of the dashboard itself.
  EXPECT_NE(html.find("id=\"benchsel\""), std::string::npos);
  EXPECT_NE(html.find("id=\"drifttable\""), std::string::npos);
  EXPECT_NE(html.find("id=\"memtable\""), std::string::npos);
  EXPECT_NE(html.find("prefers-color-scheme"), std::string::npos);
}

TEST(ReportHtmlTest, LoadBenchReportRejectsMalformed) {
  EXPECT_FALSE(LoadBenchReport("/nonexistent/BENCH_x.json").ok());
  EXPECT_FALSE(LoadBenchReports("/nonexistent-dir").ok());
}

}  // namespace
}  // namespace trmma
