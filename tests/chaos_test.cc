#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "eval/metrics.h"
#include "mm/mma.h"
#include "recovery/trmma.h"
#include "robust/fault_injection.h"
#include "robust/pipeline.h"
#include "tests/test_util.h"
#include "traj/dataset.h"

namespace trmma {
namespace {

/// End-to-end chaos harness (ISSUE acceptance): corrupted trajectories and
/// damaged dataset files flow through the full ingestion + matching +
/// recovery stack without a single abort, every input lands in exactly one
/// outcome counter, and the failed fraction stays small.
class ChaosFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::MakeTinyDataset("XA", 120));
    index_ = new SegmentRTree(*dataset_->network);
    stats_ = new TransitionStats(*dataset_->network);
    for (int idx : dataset_->train_idx) {
      stats_->AddRoute(dataset_->samples[idx].route);
    }
    planner_ = new DaRoutePlanner(*dataset_->network, *stats_);
    engine_ = new ShortestPathEngine(*dataset_->network);

    MmaConfig mma_config;
    mma_config.d0 = 16;
    mma_config.d1 = 32;
    mma_config.d2 = 16;
    mma_config.d3 = 32;
    mma_config.trans_ffn = 32;
    mma_ = new MmaMatcher(*dataset_->network, *index_, mma_config);
    Rng mma_rng(1);
    for (int e = 0; e < 2; ++e) mma_->TrainEpoch(*dataset_, mma_rng);

    TrmmaConfig config;
    config.dh = 16;
    config.trans_ffn = 32;
    trmma_ = new TrmmaRecovery(*dataset_->network, mma_, planner_, engine_,
                               config);
    Rng trmma_rng(2);
    trmma_->TrainEpoch(*dataset_, trmma_rng);
  }
  static void TearDownTestSuite() {
    delete trmma_;
    delete mma_;
    delete engine_;
    delete planner_;
    delete stats_;
    delete index_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static SegmentRTree* index_;
  static TransitionStats* stats_;
  static DaRoutePlanner* planner_;
  static ShortestPathEngine* engine_;
  static MmaMatcher* mma_;
  static TrmmaRecovery* trmma_;
};

Dataset* ChaosFixture::dataset_ = nullptr;
SegmentRTree* ChaosFixture::index_ = nullptr;
TransitionStats* ChaosFixture::stats_ = nullptr;
DaRoutePlanner* ChaosFixture::planner_ = nullptr;
ShortestPathEngine* ChaosFixture::engine_ = nullptr;
MmaMatcher* ChaosFixture::mma_ = nullptr;
TrmmaRecovery* ChaosFixture::trmma_ = nullptr;

TEST_F(ChaosFixture, CorruptedTrajectoriesSurviveThePipeline) {
  FaultInjectionConfig faults;
  faults.coord_spike_prob = 0.03;  // 5km spikes: always outside the bbox
  faults.coord_nan_prob = 0.02;
  faults.ts_shuffle_prob = 0.05;
  faults.drop_point_prob = 0.02;
  faults.seed = 9;
  FaultInjector injector(faults);

  PipelineConfig config;
  config.sanitize = SanitizeConfig::ForNetwork(*dataset_->network);
  // Sparse inputs can be as small as 2 points; a single surviving point is
  // still worth a (degenerate) recovery attempt rather than a failure.
  config.sanitize.min_points = 1;
  config.epsilon = dataset_->epsilon_s;
  RobustRecoveryPipeline pipeline(trmma_, config);

  double clean_acc = 0.0;
  double chaos_acc = 0.0;
  int n = 0;
  for (int idx : dataset_->test_idx) {
    const TrajectorySample& sample = dataset_->samples[idx];
    clean_acc +=
        PointwiseAccuracy(trmma_->Recover(sample.sparse, dataset_->epsilon_s),
                          sample.truth);

    Trajectory corrupted = sample.sparse;
    injector.CorruptTrajectory(&corrupted);
    const PipelineResult result = pipeline.Run(corrupted);
    // Outcome and payload must agree: failed <=> nothing recovered.
    EXPECT_EQ(result.failed(), result.recovered.empty());
    if (result.failed()) {
      EXPECT_FALSE(result.error.empty());
    }
    chaos_acc += PointwiseAccuracy(result.recovered, sample.truth);
    ++n;
  }
  ASSERT_GT(n, 0);

  // Every input is in exactly one counter of the tally.
  const PipelineCounters& counters = pipeline.counters();
  EXPECT_EQ(counters.total(), n);
  // Acceptance: the failed fraction stays below 5%.
  EXPECT_LT(static_cast<double>(counters.failed), 0.05 * n);
  // Corruption degrades accuracy gracefully, not catastrophically.
  EXPECT_GE(chaos_acc, 0.5 * clean_acc);
}

TEST_F(ChaosFixture, DamagedDatasetFilesNeverAbortTheLoader) {
  const std::string path = testing::TempDir() + "/trmma_chaos_dataset.txt";
  ASSERT_TRUE(SaveDataset(*dataset_, path).ok());

  FaultInjectionConfig faults;
  faults.csv_truncate_prob = 0.02;
  faults.seed = 13;
  FaultInjector injector(faults);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string corrupted = injector.CorruptCsv(buffer.str());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << corrupted;
  out.close();

  // Row damage may hit structural (network) rows -> a clean Status error,
  // or sample rows -> skip-and-log. Both are fine; aborting is not.
  auto loaded = LoadDataset(path);
  if (loaded.ok()) {
    const Dataset& ds = loaded.value();
    EXPECT_LE(ds.samples.size(), dataset_->samples.size());
    const size_t split_total =
        ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size();
    EXPECT_LE(split_total, ds.samples.size());
    for (const TrajectorySample& sample : ds.samples) {
      EXPECT_EQ(sample.raw.size(), static_cast<int>(sample.truth.size()));
    }
  } else {
    EXPECT_FALSE(loaded.status().message().empty());
  }
  std::remove(path.c_str());
}

TEST_F(ChaosFixture, SimulatedIoFailuresSurfaceAsStatus) {
  const std::string path = testing::TempDir() + "/trmma_chaos_iofail.txt";
  ASSERT_TRUE(SaveDataset(*dataset_, path).ok());

  FaultInjectionConfig faults;
  faults.io_fail_prob = 1.0;
  FaultInjector injector(faults);
  injector.Install();
  auto loaded = LoadDataset(path);
  FaultInjector::Uninstall();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);

  EXPECT_TRUE(LoadDataset(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trmma
