#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {
namespace {

/// One raw HTTP/1.0 GET against 127.0.0.1:`port`; returns the full response
/// (status line + headers + body), empty on connect failure. Deliberately
/// not a real HTTP client — the server only has to satisfy curl-level
/// plumbing.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ServerGuard {
 public:
  ServerGuard() {
    const Status status = server_.Start(0);  // ephemeral port
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  ~ServerGuard() { server_.Stop(); }
  TelemetryServer& operator*() { return server_; }
  TelemetryServer* operator->() { return &server_; }

 private:
  TelemetryServer server_;
};

TEST(TelemetryServerTest, StartsOnEphemeralPortAndStopsCleanly) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  // Stop is idempotent, and the server restarts on a fresh port.
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
}

TEST(TelemetryServerTest, DoubleStartFails) {
  ServerGuard server;
  EXPECT_FALSE(server->Start(0).ok());
}

TEST(TelemetryServerTest, HealthzRespondsOk) {
  ServerGuard server;
  const std::string response = HttpGet(server->port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
  EXPECT_GE(server->requests_served(), 1);
}

TEST(TelemetryServerTest, MetricsServesPrometheusExposition) {
  MetricRegistry::Global().GetCounter("telemetry.test.hits")->Increment(3);
  ServerGuard server;
  const std::string response = HttpGet(server->port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE telemetry_test_hits counter"),
            std::string::npos);
  EXPECT_NE(response.find("telemetry_test_hits 3"), std::string::npos);
  // Scrapes refresh the memory and lock gauges inline.
  EXPECT_NE(response.find("mem_rss_bytes"), std::string::npos);
  EXPECT_NE(response.find("lock_acquisitions"), std::string::npos);
  // Exposition body ends with a newline.
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response.back(), '\n');
}

TEST(TelemetryServerTest, StatuszReportsBuildAndRuntimeState) {
  ServerGuard server;
  const std::string response = HttpGet(server->port(), "/statusz");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("\"uptime_us\":"), std::string::npos);
  EXPECT_NE(response.find("\"pid\":"), std::string::npos);
  EXPECT_NE(response.find("\"locks\":"), std::string::npos);
  EXPECT_NE(response.find("\"memory\":"), std::string::npos);
}

TEST(TelemetryServerTest, TracezGroupsSpansByTraceId) {
  const TraceMode saved = CurrentTraceMode();
  SetTraceMode(TraceMode::kTrace);
  TraceRing::Global().Clear();
  {
    // One span inside a request context, one free-floating.
    ScopedTraceContext ctx(0x2a, -1);
    TraceRing::Global().BeginSpan("tracez.test", 10.0);
    TraceRing::Global().EndSpan(35.0);
  }
  TraceRing::Global().BeginSpan("tracez.untraced", 40.0);
  TraceRing::Global().EndSpan(41.0);

  ServerGuard server;
  const std::string response = HttpGet(server->port(), "/tracez");
  SetTraceMode(saved);
  TraceRing::Global().Clear();

  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  // Grouped payload: the traced span lands in a per-request entry with its
  // name breakdown; the context-free span is only summarized in the count.
  EXPECT_NE(response.find("\"trace_count\":1"), std::string::npos);
  EXPECT_NE(response.find("\"untraced_spans\":1"), std::string::npos);
  EXPECT_NE(response.find("\"truncated\":false"), std::string::npos);
  EXPECT_NE(response.find("\"trace_id\":\"000000000000002a\""),
            std::string::npos);
  EXPECT_NE(response.find("\"name\":\"tracez.test\""), std::string::npos);
  EXPECT_EQ(response.find("\"name\":\"tracez.untraced\""), std::string::npos);
}

TEST(TelemetryServerTest, SloEndpointReflectsWatchdog) {
  ServerGuard server;
  const std::string response = HttpGet(server->port(), "/slo");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("\"active\":"), std::string::npos);
}

TEST(TelemetryServerTest, UnknownPathIs404AndQueryStringsAreStripped) {
  ServerGuard server;
  const std::string missing = HttpGet(server->port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  const std::string with_query = HttpGet(server->port(), "/healthz?probe=1");
  EXPECT_NE(with_query.find("HTTP/1.0 200"), std::string::npos);
}

TEST(TelemetryServerTest, GarbageRequestDoesNotKillTheServer) {
  ServerGuard server;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "\x01\x02 not http at all\r\n\r\n";
  (void)::send(fd, garbage, sizeof(garbage) - 1, 0);
  char buf[512];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);
  // The server survives and keeps answering.
  const std::string response = HttpGet(server->port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
}

TEST(TelemetryServerTest, QuitzHandshakeReleasesALingeringProcess) {
  ServerGuard server;
  EXPECT_FALSE(server->quit_requested());
  // Nothing has hit /quitz yet: a zero-budget wait times out as false.
  EXPECT_FALSE(server->WaitForQuit(0));
  const std::string response = HttpGet(server->port(), "/quitz");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("bye"), std::string::npos);
  EXPECT_TRUE(server->quit_requested());
  // Already released: the wait returns immediately regardless of budget.
  EXPECT_TRUE(server->WaitForQuit(60000));
  // A restart clears the handshake.
  server->Stop();
  ASSERT_TRUE(server->Start(0).ok());
  EXPECT_FALSE(server->quit_requested());
  // WaitForQuit on a stopped server is a no-op success (nothing to hold).
  server->Stop();
  EXPECT_TRUE(server->WaitForQuit(60000));
}

}  // namespace
}  // namespace obs
}  // namespace trmma
