#include <gtest/gtest.h>

#include <cmath>

#include "node2vec/node2vec.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

double Cosine(const nn::Matrix& table, int a, int b) {
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (int c = 0; c < table.cols(); ++c) {
    dot += table.at(a, c) * table.at(b, c);
    na += table.at(a, c) * table.at(a, c);
    nb += table.at(b, c) * table.at(b, c);
  }
  if (na == 0 || nb == 0) return 0;
  return dot / std::sqrt(na * nb);
}

TEST(Node2VecTest, OutputShape) {
  auto g = test::MakeGrid(5, 5, 100.0);
  ASSERT_NE(g, nullptr);
  Node2VecConfig config;
  config.dim = 16;
  config.epochs = 1;
  config.walks_per_node = 2;
  Rng rng(1);
  nn::Matrix table = TrainNode2Vec(*g, config, rng);
  EXPECT_EQ(table.rows(), g->num_segments());
  EXPECT_EQ(table.cols(), 16);
}

TEST(Node2VecTest, NeighborsMoreSimilarThanDistantSegments) {
  auto g = test::MakeGrid(8, 8, 100.0);
  ASSERT_NE(g, nullptr);
  Node2VecConfig config;
  config.dim = 24;
  config.epochs = 3;
  config.walks_per_node = 6;
  Rng rng(2);
  nn::Matrix table = TrainNode2Vec(*g, config, rng);

  // Average similarity of connected pairs vs random far pairs.
  Rng pick(3);
  double near_sim = 0;
  int near_count = 0;
  for (SegmentId e = 0; e < g->num_segments() && near_count < 200; ++e) {
    for (SegmentId n : g->NextSegments(e)) {
      if (n == e) continue;
      near_sim += Cosine(table, e, n);
      ++near_count;
      break;
    }
  }
  double far_sim = 0;
  int far_count = 0;
  for (int i = 0; i < 200; ++i) {
    SegmentId a = static_cast<SegmentId>(pick.UniformInt(g->num_segments()));
    SegmentId b = static_cast<SegmentId>(pick.UniformInt(g->num_segments()));
    const Vec2 pa = g->PointOnSegment(a, 0.5);
    const Vec2 pb = g->PointOnSegment(b, 0.5);
    if ((pa - pb).Norm() < 400.0) continue;  // keep genuinely far pairs
    far_sim += Cosine(table, a, b);
    ++far_count;
  }
  ASSERT_GT(near_count, 50);
  ASSERT_GT(far_count, 50);
  EXPECT_GT(near_sim / near_count, far_sim / far_count + 0.1);
}

TEST(Node2VecTest, DeterministicForSeed) {
  auto g = test::MakeGrid(4, 4, 100.0);
  ASSERT_NE(g, nullptr);
  Node2VecConfig config;
  config.dim = 8;
  config.epochs = 1;
  Rng rng1(9);
  Rng rng2(9);
  nn::Matrix a = TrainNode2Vec(*g, config, rng1);
  nn::Matrix b = TrainNode2Vec(*g, config, rng2);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace trmma
