#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/profiler.h"
#include "nn/tensor.h"
#include "nn/transformer.h"
#include "obs/trace.h"

namespace trmma {
namespace nn {
namespace {

namespace ops = nn::ops;

/// Enables the op profiler for one test and restores the prior state (and
/// clears the table) on exit, so tests do not leak entries into each other.
class ProfilerGuard {
 public:
  ProfilerGuard() : prev_(OpProfiler::Enabled()) {
    OpProfiler::SetEnabled(true);
    OpProfiler::Global().Reset();
  }
  ~ProfilerGuard() {
    OpProfiler::Global().Reset();
    OpProfiler::SetEnabled(prev_);
  }

 private:
  bool prev_;
};

Matrix RandomMatrix(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(-1, 1);
  return m;
}

const OpProfileEntry* FindEntry(const std::vector<OpProfileEntry>& entries,
                                const std::string& name) {
  for (const OpProfileEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

// ------------------------------------------------------------- accounting

TEST(OpProfilerTest, DisabledRecordsNothing) {
  OpProfiler::SetEnabled(false);
  OpProfiler::Global().Reset();
  Tape tape;
  Tensor a = ops::Input(tape, RandomMatrix(4, 4, 1));
  Tensor b = ops::Input(tape, RandomMatrix(4, 4, 2));
  Tensor loss = ops::SumAll(ops::MatMul(a, b));
  tape.Backward(loss);
  EXPECT_TRUE(OpProfiler::Global().SortedEntries().empty());
  EXPECT_EQ(OpProfiler::Global().TotalAccountedMicros(), 0.0);
}

TEST(OpProfilerTest, RecordsForwardCallsAndFlops) {
  ProfilerGuard guard;
  Tape tape;
  Tensor a = ops::Input(tape, RandomMatrix(3, 5, 1));
  Tensor b = ops::Input(tape, RandomMatrix(5, 7, 2));
  ops::MatMul(a, b);
  ops::MatMul(a, b);

  const auto entries = OpProfiler::Global().SortedEntries();
  const OpProfileEntry* matmul = FindEntry(entries, "matmul");
  ASSERT_NE(matmul, nullptr);
  EXPECT_EQ(matmul->calls, 2);
  // 2 * m * k * n per call.
  EXPECT_DOUBLE_EQ(matmul->flops, 2.0 * (2.0 * 3 * 5 * 7));
  EXPECT_GE(matmul->forward_us, 0.0);
  const OpProfileEntry* input = FindEntry(entries, "input");
  ASSERT_NE(input, nullptr);
  EXPECT_EQ(input->calls, 2);
}

TEST(OpProfilerTest, BackwardTimeAttributedToCreatingOp) {
  ProfilerGuard guard;
  Tape tape;
  Tensor a = ops::Input(tape, RandomMatrix(8, 8, 1));
  Tensor b = ops::Input(tape, RandomMatrix(8, 8, 2));
  Tensor loss = ops::SumAll(ops::Mul(ops::MatMul(a, b), ops::MatMul(a, b)));
  tape.Backward(loss);

  const auto entries = OpProfiler::Global().SortedEntries();
  const OpProfileEntry* matmul = FindEntry(entries, "matmul");
  ASSERT_NE(matmul, nullptr);
  // Both matmul nodes received gradient, so backward closures ran and were
  // timed (clock resolution may make tiny closures read as 0; >= is all we
  // can assert portably, but calls prove attribution happened).
  EXPECT_EQ(matmul->calls, 2);
  EXPECT_GE(matmul->backward_us, 0.0);
  const OpProfileEntry* sum = FindEntry(entries, "sum_all");
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->calls, 1);
}

TEST(OpProfilerTest, EntriesSortedByTotalTimeAndDumpIsStable) {
  ProfilerGuard guard;
  Tape tape;
  Tensor a = ops::Input(tape, RandomMatrix(32, 32, 1));
  Tensor b = ops::Input(tape, RandomMatrix(32, 32, 2));
  for (int i = 0; i < 8; ++i) ops::MatMul(a, b);
  ops::Relu(a);

  const auto entries = OpProfiler::Global().SortedEntries();
  ASSERT_GE(entries.size(), 3u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].total_us(), entries[i].total_us());
  }
  const std::string dump = OpProfiler::Global().DumpString();
  EXPECT_NE(dump.find("matmul"), std::string::npos);
  EXPECT_NE(dump.find("op kinds"), std::string::npos);
  const std::string json = OpProfiler::Global().ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"matmul\""), std::string::npos);
  EXPECT_NE(json.find("\"forward_us\":"), std::string::npos);
}

TEST(OpProfilerTest, CoversMostOfForwardBackwardWallTime) {
  ProfilerGuard guard;
  Rng rng(7);
  TransformerEncoder enc(16, 2, 32, 1, rng);
  Matrix x = RandomMatrix(12, 16, 8);
  const double t0 = obs::NowMicros();
  for (int i = 0; i < 10; ++i) {
    Tape tape;
    Tensor y = enc.Forward(ops::Input(tape, x));
    Tensor loss = ops::SumAll(ops::Mul(y, y));
    tape.Backward(loss);
    enc.ZeroGrad();
  }
  const double wall_us = obs::NowMicros() - t0;
  const double accounted = OpProfiler::Global().TotalAccountedMicros();
  // The bench asserts >= 90% at its workload; the unit test uses a smaller
  // model where fixed overheads weigh more, so the bar is looser. This
  // still catches wholesale attribution loss (e.g. backward not timed).
  EXPECT_GT(accounted, 0.5 * wall_us);
  EXPECT_LE(accounted, 1.5 * wall_us);
}

// ------------------------------------------------------- alloc accounting

TEST(MatrixAllocStatsTest, TracksLiveAndPeakBytes) {
  ResetMatrixPeakBytes();
  const MatrixAllocStats before = GetMatrixAllocStats();
  {
    Matrix m(10, 10);
    const MatrixAllocStats during = GetMatrixAllocStats();
    EXPECT_EQ(during.live_bytes - before.live_bytes, 800);
    EXPECT_GE(during.peak_bytes, during.live_bytes);
    EXPECT_EQ(during.total_bytes - before.total_bytes, 800);
  }
  const MatrixAllocStats after = GetMatrixAllocStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.total_bytes - before.total_bytes, 800);
}

TEST(MatrixAllocStatsTest, MoveTransfersOwnershipWithoutDoubleCount) {
  const MatrixAllocStats before = GetMatrixAllocStats();
  {
    Matrix m(4, 4);
    Matrix n = std::move(m);
    const MatrixAllocStats during = GetMatrixAllocStats();
    EXPECT_EQ(during.live_bytes - before.live_bytes, 128);
  }
  EXPECT_EQ(GetMatrixAllocStats().live_bytes, before.live_bytes);
}

TEST(MatrixAllocStatsTest, CopyAssignSwapsAccounting) {
  const MatrixAllocStats before = GetMatrixAllocStats();
  {
    Matrix a(2, 2);
    Matrix b(8, 8);
    a = b;  // a grows from 32 to 512 bytes
    const MatrixAllocStats during = GetMatrixAllocStats();
    EXPECT_EQ(during.live_bytes - before.live_bytes, 1024);
  }
  EXPECT_EQ(GetMatrixAllocStats().live_bytes, before.live_bytes);
}

TEST(MatrixAllocStatsTest, OpScopeAttributesBytesToOp) {
  ProfilerGuard guard;
  Tape tape;
  Tensor a = ops::Input(tape, Matrix(16, 16));
  Tensor b = ops::Input(tape, Matrix(16, 16));
  ops::MatMul(a, b);
  const auto entries = OpProfiler::Global().SortedEntries();
  const OpProfileEntry* matmul = FindEntry(entries, "matmul");
  ASSERT_NE(matmul, nullptr);
  // The result matrix (16x16 doubles) was allocated inside the scope.
  EXPECT_GE(matmul->bytes, 16 * 16 * 8);
}

}  // namespace
}  // namespace nn
}  // namespace trmma
