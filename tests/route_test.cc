#include <gtest/gtest.h>

#include "graph/route.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

/// Eastbound segment chain of a w x 1 grid.
std::vector<SegmentId> EastChain(const RoadNetwork& g) {
  std::vector<SegmentId> east;
  for (SegmentId i = 0; i < g.num_segments(); ++i) {
    if (g.segment(i).to == g.segment(i).from + 1) east.push_back(i);
  }
  return east;
}

TEST(RouteTest, IsConnectedRoute) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  auto east = EastChain(*g);
  EXPECT_TRUE(IsConnectedRoute(*g, {east[0], east[1], east[2]}));
  EXPECT_FALSE(IsConnectedRoute(*g, {east[0], east[2]}));
  EXPECT_TRUE(IsConnectedRoute(*g, {east[0]}));
  EXPECT_TRUE(IsConnectedRoute(*g, {}));
}

TEST(RouteTest, RouteLengthSumsSegments) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  auto east = EastChain(*g);
  EXPECT_NEAR(RouteLength(*g, {east[0], east[1]}), 200.0, 1.0);
  EXPECT_DOUBLE_EQ(RouteLength(*g, {}), 0.0);
}

TEST(RouteTest, AppendRouteDropsSharedBoundary) {
  Route r = {1, 2, 3};
  AppendRoute(r, {3, 4, 5});
  EXPECT_EQ(r, (Route{1, 2, 3, 4, 5}));
  AppendRoute(r, {9});
  EXPECT_EQ(r.back(), 9);
  Route empty;
  AppendRoute(empty, {7, 8});
  EXPECT_EQ(empty, (Route{7, 8}));
}

TEST(RouteTest, DeduplicateConsecutive) {
  EXPECT_EQ(DeduplicateConsecutive({1, 1, 2, 2, 2, 3, 1}),
            (Route{1, 2, 3, 1}));
  EXPECT_EQ(DeduplicateConsecutive({}), Route{});
  EXPECT_EQ(DeduplicateConsecutive({5}), Route{5});
}

TEST(RouteTest, DistanceAlongRouteSameSegment) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  auto east = EastChain(*g);
  Route r = {east[0], east[1], east[2]};
  const double len = g->segment(east[0]).length_m;
  EXPECT_NEAR(DistanceAlongRoute(*g, r, 0, 0.2, 0, 0.8), 0.6 * len, 1e-9);
  EXPECT_NEAR(DistanceAlongRoute(*g, r, 1, 0.5, 1, 0.5), 0.0, 1e-12);
}

TEST(RouteTest, DistanceAlongRouteAcrossSegments) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  auto east = EastChain(*g);
  Route r = {east[0], east[1], east[2]};
  // From 50% of segment 0 to 50% of segment 2: 0.5+1+0.5 segments.
  const double expect = 0.5 * g->segment(east[0]).length_m +
                        g->segment(east[1]).length_m +
                        0.5 * g->segment(east[2]).length_m;
  EXPECT_NEAR(DistanceAlongRoute(*g, r, 0, 0.5, 2, 0.5), expect, 1e-9);
}

}  // namespace
}  // namespace trmma
