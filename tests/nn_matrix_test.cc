#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/matrix.h"

namespace trmma {
namespace nn {
namespace {

Matrix RandomMatrix(int r, int c, Rng& rng) {
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(-2, 2);
  return m;
}

/// Naive triple-loop reference.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      out.at(i, j) = acc;
    }
  }
  return out;
}

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  m.Fill(7.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.5);
  Matrix f(2, 2, -1.0);
  EXPECT_DOUBLE_EQ(f.at(1, 1), -1.0);
}

TEST(MatrixTest, Axpy) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 3.0);
  a.Axpy(2.0, b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 7.0);
}

TEST(MatrixTest, Sum) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 3;
  m.at(1, 1) = -1;
  EXPECT_DOUBLE_EQ(m.Sum(), 5.0);
}

TEST(MatrixTest, SameShape) {
  EXPECT_TRUE(Matrix(2, 3).SameShape(Matrix(2, 3)));
  EXPECT_FALSE(Matrix(2, 3).SameShape(Matrix(3, 2)));
}

class MatMulPropertyTest : public testing::TestWithParam<int> {};

TEST_P(MatMulPropertyTest, MatchesNaive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(8));
    const int k = 1 + static_cast<int>(rng.UniformInt(8));
    const int n = 1 + static_cast<int>(rng.UniformInt(8));
    Matrix a = RandomMatrix(m, k, rng);
    Matrix b = RandomMatrix(k, n, rng);
    Matrix fast;
    MatMul(a, b, &fast);
    Matrix slow = NaiveMatMul(a, b);
    ASSERT_TRUE(fast.SameShape(slow));
    for (int i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulPropertyTest, testing::Values(1, 2, 3));

TEST(MatrixTest, AddMatMulAccumulates) {
  Rng rng(9);
  Matrix a = RandomMatrix(3, 4, rng);
  Matrix b = RandomMatrix(4, 2, rng);
  Matrix out(3, 2, 1.0);
  AddMatMul(a, b, &out);
  Matrix ref = NaiveMatMul(a, b);
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], ref.data()[i] + 1.0, 1e-10);
  }
}

TEST(MatrixTest, AddMatMulTransA) {
  Rng rng(11);
  Matrix a = RandomMatrix(4, 3, rng);  // a^T is 3x4
  Matrix b = RandomMatrix(4, 2, rng);
  Matrix out(3, 2);
  AddMatMulTransA(a, b, &out);
  // Reference: transpose a then multiply.
  Matrix at(3, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  Matrix ref = NaiveMatMul(at, b);
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], ref.data()[i], 1e-10);
  }
}

TEST(MatrixTest, AddMatMulTransB) {
  Rng rng(13);
  Matrix a = RandomMatrix(3, 4, rng);
  Matrix b = RandomMatrix(2, 4, rng);  // b^T is 4x2
  Matrix out(3, 2);
  AddMatMulTransB(a, b, &out);
  Matrix bt(4, 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) bt.at(j, i) = b.at(i, j);
  }
  Matrix ref = NaiveMatMul(a, bt);
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], ref.data()[i], 1e-10);
  }
}

}  // namespace
}  // namespace nn
}  // namespace trmma
