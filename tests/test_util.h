#ifndef TRMMA_TESTS_TEST_UTIL_H_
#define TRMMA_TESTS_TEST_UTIL_H_

#include <memory>

#include "common/random.h"
#include "gen/network_gen.h"
#include "gen/presets.h"
#include "graph/road_network.h"

namespace trmma {
namespace test {

/// Builds a w x h grid network with bidirectional streets, spacing in
/// meters, deterministic layout (no jitter/deletion), for hand-checkable
/// graph tests. Node (gx, gy) has id gy*w+gx.
inline std::unique_ptr<RoadNetwork> MakeGrid(int w, int h,
                                             double spacing = 100.0,
                                             double speed = 10.0) {
  auto g = std::make_unique<RoadNetwork>();
  const LocalProjection proj(LatLng{31.0, 121.0});
  for (int gy = 0; gy < h; ++gy) {
    for (int gx = 0; gx < w; ++gx) {
      g->AddNode(proj.ToLatLng(Vec2{gx * spacing, gy * spacing}));
    }
  }
  auto id = [w](int gx, int gy) { return gy * w + gx; };
  for (int gy = 0; gy < h; ++gy) {
    for (int gx = 0; gx < w; ++gx) {
      if (gx + 1 < w) {
        (void)g->AddSegment(id(gx, gy), id(gx + 1, gy), speed);
        (void)g->AddSegment(id(gx + 1, gy), id(gx, gy), speed);
      }
      if (gy + 1 < h) {
        (void)g->AddSegment(id(gx, gy), id(gx, gy + 1), speed);
        (void)g->AddSegment(id(gx, gy + 1), id(gx, gy), speed);
      }
    }
  }
  auto st = g->Finalize();
  if (!st.ok()) return nullptr;
  return g;
}

/// A small synthetic network from the real generator.
inline std::unique_ptr<RoadNetwork> MakeCityNetwork(uint64_t seed = 3) {
  NetworkGenConfig config;
  config.grid_width = 10;
  config.grid_height = 8;
  Rng rng(seed);
  auto net = GenerateNetwork(config, rng);
  if (!net.ok()) return nullptr;
  return std::move(net).value();
}

/// A tiny end-to-end dataset (shared across model tests). Sizes kept small
/// so the whole suite stays fast.
inline Dataset MakeTinyDataset(const std::string& city = "XA",
                               int num_trajectories = 60) {
  auto ds = BuildCityDatasetByName(city, num_trajectories);
  return std::move(ds).value();
}

}  // namespace test
}  // namespace trmma

#endif  // TRMMA_TESTS_TEST_UTIL_H_
