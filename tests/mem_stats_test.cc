#include "obs/mem_stats.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace trmma {
namespace obs {
namespace {

/// Leaves mem-stats disabled and zeroed no matter how the test exits.
class MemGuard {
 public:
  explicit MemGuard(bool enabled) {
    ResetMemStats();
    EnableMemStats(enabled);
  }
  ~MemGuard() {
    EnableMemStats(false);
    ResetMemStats();
  }
};

TEST(MemStatsTest, AddSubTracksCurrentAndPeak) {
  MemGuard guard(true);
  MemAdd(MemTag::kFlightRecorder, 1000);
  MemAdd(MemTag::kFlightRecorder, 500);
  MemSub(MemTag::kFlightRecorder, 300);
  const MemTagStats stats = GetMemTagStats(MemTag::kFlightRecorder);
  EXPECT_EQ(stats.current_bytes, 1200);
  EXPECT_EQ(stats.peak_bytes, 1500);
  EXPECT_EQ(stats.events, 3);
}

TEST(MemStatsTest, SetReplacesCurrentOutright) {
  MemGuard guard(true);
  MemSet(MemTag::kGraph, 4096);
  MemSet(MemTag::kGraph, 2048);
  const MemTagStats stats = GetMemTagStats(MemTag::kGraph);
  EXPECT_EQ(stats.current_bytes, 2048);
  EXPECT_EQ(stats.peak_bytes, 4096);
}

TEST(MemStatsTest, DisabledHooksRecordNothing) {
  MemGuard guard(false);
  MemAdd(MemTag::kUbodt, 1 << 20);
  MemSet(MemTag::kRtree, 1 << 20);
  EXPECT_EQ(GetMemTagStats(MemTag::kUbodt).current_bytes, 0);
  EXPECT_EQ(GetMemTagStats(MemTag::kRtree).current_bytes, 0);
}

TEST(MemStatsTest, TagNamesAreStable) {
  EXPECT_STREQ(MemTagName(MemTag::kGraph), "graph");
  EXPECT_STREQ(MemTagName(MemTag::kRtree), "rtree");
  EXPECT_STREQ(MemTagName(MemTag::kUbodt), "ubodt");
  EXPECT_STREQ(MemTagName(MemTag::kMatrix), "matrix");
  EXPECT_STREQ(MemTagName(MemTag::kFlightRecorder), "flight_recorder");
  EXPECT_STREQ(MemTagName(MemTag::kOther), "other");
}

TEST(MemStatsTest, SampleRssReportsLiveProcessNumbers) {
  const RssSample sample = SampleRss();
  // The test binary definitely occupies memory; both fields come from
  // /proc/self/status on Linux (getrusage fallback still fills the peak).
  EXPECT_GT(sample.rss_peak_bytes, 0);
  EXPECT_GT(sample.rss_bytes, 0);
  EXPECT_LE(sample.rss_bytes, sample.rss_peak_bytes * 2);
}

TEST(MemStatsTest, MemoryJsonHasRssAndEverySubsystem) {
  MemGuard guard(true);
  MemSet(MemTag::kGraph, 1234);
  const std::string json = MemoryJson();
  EXPECT_NE(json.find("\"rss_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"rss_peak_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"subsystems\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"graph\",\"current_bytes\":1234"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flight_recorder\""), std::string::npos);
}

TEST(MemStatsTest, PublishMemoryMetricsExportsGauges) {
  MemGuard guard(true);
  MemSet(MemTag::kUbodt, 9000);
  MetricRegistry reg;
  PublishMemoryMetrics(&reg);
  EXPECT_GT(reg.GetGauge("mem.rss.bytes")->Value(), 0.0);
  EXPECT_GT(reg.GetGauge("mem.rss_peak.bytes")->Value(), 0.0);
  EXPECT_DOUBLE_EQ(
      reg.GetGauge("mem.subsystem.bytes", {{"subsystem", "ubodt"}})->Value(),
      9000.0);
  EXPECT_DOUBLE_EQ(
      reg.GetGauge("mem.subsystem.peak.bytes", {{"subsystem", "ubodt"}})
          ->Value(),
      9000.0);
}

TEST(MemStatsTest, InitFromEnvHonorsOptOut) {
  MemGuard guard(false);
  ::setenv("TRMMA_MEM_STATS", "0", 1);
  EXPECT_FALSE(InitMemStatsFromEnv());
  EXPECT_FALSE(MemStatsEnabled());
  ::setenv("TRMMA_MEM_STATS", "1", 1);
  EXPECT_TRUE(InitMemStatsFromEnv());
  EXPECT_TRUE(MemStatsEnabled());
  ::unsetenv("TRMMA_MEM_STATS");
  EXPECT_TRUE(InitMemStatsFromEnv());
  EXPECT_TRUE(MemStatsEnabled());
}

}  // namespace
}  // namespace obs
}  // namespace trmma
