#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <string>

#include "common/deadline.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "serve/breaker.h"
#include "serve/engine.h"
#include "traj/types.h"

namespace trmma {
namespace {

using Clock = std::chrono::steady_clock;

Trajectory MakeTraj(int n = 3) {
  Trajectory t;
  for (int i = 0; i < n; ++i) {
    GpsPoint p;
    p.pos = LatLng{31.0 + 1e-4 * i, 121.0 + 1e-4 * i};
    p.t = 15.0 * i;
    t.points.push_back(p);
  }
  return t;
}

serve::ServeRequest MatchRequest() {
  serve::ServeRequest req;
  req.kind = serve::RequestKind::kMatch;
  req.traj = MakeTraj();
  return req;
}

serve::ServeRequest RecoverRequest() {
  serve::ServeRequest req;
  req.kind = serve::RequestKind::kRecover;
  req.traj = MakeTraj();
  req.epsilon = 15.0;
  return req;
}

// ---------------------------------------------------------------------------
// Deadline substrate

TEST(DeadlineTest, UnboundedNeverExpires) {
  Deadline d = Deadline::Unbounded();
  EXPECT_FALSE(d.bounded());
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(DeadlineExpired());  // no active scope
}

TEST(DeadlineTest, BoundedDeadlineExpires) {
  Deadline d = Deadline::AfterMillis(1.0);
  EXPECT_TRUE(d.bounded());
  EXPECT_GT(d.RemainingMillis(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, ScopeActivatesThreadLocalCheck) {
  EXPECT_FALSE(DeadlineExpired());
  {
    DeadlineScope scope(Deadline::AfterMillis(0.01));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(DeadlineExpired());
  }
  EXPECT_FALSE(DeadlineExpired());  // scope restored
}

TEST(DeadlineTest, CancelFlagExpiresUnboundedScope) {
  std::atomic<bool> cancel{false};
  DeadlineScope scope(Deadline::Unbounded(), &cancel);
  EXPECT_FALSE(DeadlineExpired());
  cancel.store(true);
  EXPECT_TRUE(DeadlineExpired());
}

TEST(DeadlineTest, DegradationPropagatesToOuterScope) {
  DeadlineScope outer(Deadline::Unbounded());
  EXPECT_FALSE(DeadlineDegradationNoted());
  {
    DeadlineScope inner(Deadline::AfterMillis(1000.0));
    EXPECT_FALSE(DeadlineDegradationNoted());  // inner starts clean
    NoteDeadlineDegradation();
    EXPECT_TRUE(DeadlineDegradationNoted());
  }
  // The inner scope's degradation is visible to the outer request scope.
  EXPECT_TRUE(DeadlineDegradationNoted());
}

// ---------------------------------------------------------------------------
// Seed mixing and per-request fault streams

TEST(MixSeedTest, DeterministicAndSensitiveToBothInputs) {
  EXPECT_EQ(MixSeed(1, 2), MixSeed(1, 2));
  EXPECT_NE(MixSeed(1, 2), MixSeed(1, 3));
  EXPECT_NE(MixSeed(1, 2), MixSeed(2, 2));
  // Nearby streams decorrelate: the low bits differ too.
  EXPECT_NE(MixSeed(7, 100) & 0xff, MixSeed(7, 101) & 0xff);
}

TEST(FaultInjectorTest, SeededCorruptionIsAPureFunctionOfTheStream) {
  FaultInjectionConfig config;
  config.coord_spike_prob = 0.2;
  config.coord_nan_prob = 0.1;
  config.drop_point_prob = 0.1;
  config.seed = 42;
  FaultInjector injector(config);

  const Trajectory base = MakeTraj(30);
  Trajectory a = base;
  Trajectory b = base;
  injector.CorruptTrajectorySeeded(&a, 7);
  injector.CorruptTrajectorySeeded(&b, 7);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    // NaN != NaN, so compare bit-for-bit via ==-or-both-NaN.
    const GpsPoint& pa = a.points[i];
    const GpsPoint& pb = b.points[i];
    EXPECT_TRUE(pa.pos.lat == pb.pos.lat ||
                (pa.pos.lat != pa.pos.lat && pb.pos.lat != pb.pos.lat));
    EXPECT_EQ(pa.t, pb.t);
  }

  Trajectory c = base;
  injector.CorruptTrajectorySeeded(&c, 8);
  bool differs = c.size() != a.size();
  for (int i = 0; !differs && i < std::min(a.size(), c.size()); ++i) {
    differs = a.points[i].pos.lat != c.points[i].pos.lat &&
              !(a.points[i].pos.lat != a.points[i].pos.lat);
  }
  EXPECT_TRUE(differs) << "independent streams should corrupt differently";
}

TEST(FaultInjectorTest, SeededCorruptionIsInterleavingIndependent) {
  FaultInjectionConfig config;
  config.coord_spike_prob = 0.3;
  config.seed = 5;
  FaultInjector injector(config);

  const Trajectory base = MakeTraj(20);
  std::vector<Trajectory> serial(8, base);
  for (int i = 0; i < 8; ++i) {
    injector.CorruptTrajectorySeeded(&serial[i], static_cast<uint64_t>(i));
  }
  std::vector<Trajectory> parallel(8, base);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&injector, &parallel, i] {
      injector.CorruptTrajectorySeeded(&parallel[i],
                                       static_cast<uint64_t>(i));
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size());
    for (int j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(serial[i].points[j].pos.lat, parallel[i].points[j].pos.lat);
      EXPECT_EQ(serial[i].points[j].t, parallel[i].points[j].t);
    }
  }
}

// ---------------------------------------------------------------------------
// Circuit breaker (explicit clock, no sleeps)

serve::BreakerConfig SmallBreaker() {
  serve::BreakerConfig config;
  config.window = 8;
  config.min_samples = 4;
  config.trip_ratio = 0.5;
  config.cooldown_ms = 100.0;
  config.half_open_probes = 2;
  return config;
}

TEST(CircuitBreakerTest, TripsHalfOpensAndCloses) {
  serve::CircuitBreaker breaker("match", SmallBreaker());
  const Clock::time_point t0 = Clock::now();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);

  for (int i = 0; i < 4; ++i) breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);

  double retry_after = 0.0;
  EXPECT_FALSE(breaker.Admit(t0 + std::chrono::milliseconds(10),
                             &retry_after));
  EXPECT_GT(retry_after, 0.0);
  EXPECT_LE(retry_after, 100.0);

  // Cooldown elapsed: half-open admits exactly half_open_probes probes.
  const Clock::time_point t1 = t0 + std::chrono::milliseconds(150);
  EXPECT_TRUE(breaker.Admit(t1, &retry_after));
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Admit(t1, &retry_after));
  EXPECT_FALSE(breaker.Admit(t1, &retry_after));

  breaker.RecordSuccess(t1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHalfOpen);
  breaker.RecordSuccess(t1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);

  // The window was cleared on close: old failures cannot re-trip it.
  breaker.RecordFailure(t1);
  breaker.RecordFailure(t1);
  breaker.RecordFailure(t1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopens) {
  serve::CircuitBreaker breaker("recover", SmallBreaker());
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(t0);
  ASSERT_EQ(breaker.state(), serve::BreakerState::kOpen);

  const Clock::time_point t1 = t0 + std::chrono::milliseconds(150);
  ASSERT_TRUE(breaker.Admit(t1, nullptr));
  breaker.RecordFailure(t1);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  // The cooldown restarts from the failed probe.
  EXPECT_FALSE(breaker.Admit(t1 + std::chrono::milliseconds(50), nullptr));
  EXPECT_TRUE(breaker.Admit(t1 + std::chrono::milliseconds(150), nullptr));
}

TEST(CircuitBreakerTest, HealthyTrafficKeepsItClosed) {
  serve::CircuitBreaker breaker("match", SmallBreaker());
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(breaker.Admit(t0, nullptr));
    // 1-in-4 failures stays under the 0.5 trip ratio.
    if (i % 4 == 0) {
      breaker.RecordFailure(t0);
    } else {
      breaker.RecordSuccess(t0);
    }
  }
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Engine over toy workers

/// Succeeds instantly with a fixed payload.
class EchoWorker : public serve::Worker {
 public:
  Status Match(const Trajectory& traj, serve::MatchOutput* out) override {
    out->segments.assign(static_cast<size_t>(traj.size()), SegmentId{0});
    return Status::OK();
  }
  Status Recover(const Trajectory& traj, double, MatchedTrajectory* out,
                 bool* degraded) override {
    out->assign(static_cast<size_t>(traj.size()), MatchedPoint{});
    *degraded = false;
    return Status::OK();
  }
};

/// Blocks the Nth call (0-based) on a shared gate; other calls echo.
class GatedWorker : public serve::Worker {
 public:
  GatedWorker(std::atomic<int>* calls, int gated_call,
              std::promise<void>* entered, std::shared_future<void> gate)
      : calls_(calls), gated_call_(gated_call), entered_(entered),
        gate_(std::move(gate)) {}

  Status Match(const Trajectory& traj, serve::MatchOutput* out) override {
    const int call = calls_->fetch_add(1);
    if (call == gated_call_) {
      entered_->set_value();
      gate_.wait();
    }
    out->segments.assign(static_cast<size_t>(traj.size()), SegmentId{0});
    return Status::OK();
  }
  Status Recover(const Trajectory& traj, double, MatchedTrajectory* out,
                 bool*) override {
    out->assign(static_cast<size_t>(traj.size()), MatchedPoint{});
    return Status::OK();
  }

 private:
  std::atomic<int>* calls_;
  int gated_call_;
  std::promise<void>* entered_;
  std::shared_future<void> gate_;
};

/// Fails the first `failures` calls with `code`, then succeeds.
class FlakyWorker : public serve::Worker {
 public:
  FlakyWorker(std::atomic<int>* calls, int failures, StatusCode code)
      : calls_(calls), failures_(failures), code_(code) {}

  Status Fail() const {
    return code_ == StatusCode::kIOError
               ? Status::IOError("flaky")
               : Status::InvalidArgument("bad request");
  }
  Status Match(const Trajectory& traj, serve::MatchOutput* out) override {
    if (calls_->fetch_add(1) < failures_) return Fail();
    out->segments.assign(static_cast<size_t>(traj.size()), SegmentId{0});
    return Status::OK();
  }
  Status Recover(const Trajectory& traj, double, MatchedTrajectory* out,
                 bool*) override {
    if (calls_->fetch_add(1) < failures_) return Fail();
    out->assign(static_cast<size_t>(traj.size()), MatchedPoint{});
    return Status::OK();
  }

 private:
  std::atomic<int>* calls_;
  int failures_;
  StatusCode code_;
};

serve::WorkerFactory EchoFactory() {
  return [](int) { return std::make_unique<EchoWorker>(); };
}

TEST(ServeEngineTest, StartValidatesConfigAndFactory) {
  serve::ServeConfig config;
  config.threads = 0;
  serve::ServeEngine bad_threads(config, EchoFactory());
  EXPECT_EQ(bad_threads.Start().code(), StatusCode::kInvalidArgument);

  config.threads = 1;
  serve::ServeEngine null_worker(
      config, [](int) -> std::unique_ptr<serve::Worker> { return nullptr; });
  EXPECT_EQ(null_worker.Start().code(), StatusCode::kInternal);
}

TEST(ServeEngineTest, ServesBothRequestClasses) {
  serve::ServeConfig config;
  config.threads = 2;
  serve::ServeEngine engine(config, EchoFactory());
  ASSERT_TRUE(engine.Start().ok());

  serve::ServeResponse m = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(m.outcome, serve::Outcome::kSuccess);
  EXPECT_TRUE(m.status.ok());
  EXPECT_EQ(m.match.segments.size(), 3u);
  EXPECT_EQ(m.attempts, 1);
  EXPECT_GT(m.latency_us, 0.0);

  serve::ServeResponse r = engine.SubmitAndWait(RecoverRequest());
  EXPECT_EQ(r.outcome, serve::Outcome::kSuccess);
  EXPECT_EQ(r.recovered.size(), 3u);

  engine.Stop();
  const serve::ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.success, 2);
  EXPECT_TRUE(stats.Consistent());
}

TEST(ServeEngineTest, FullQueueShedsWithRetryAfter) {
  std::atomic<int> calls{0};
  std::promise<void> entered;
  std::promise<void> gate;
  std::shared_future<void> gate_future(gate.get_future());

  serve::ServeConfig config;
  config.threads = 1;
  config.queue_cap = 2;
  config.deadline_ms = 0.0;  // queued requests must not time out
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<GatedWorker>(&calls, 0, &entered,
                                         gate_future);
  });
  ASSERT_TRUE(engine.Start().ok());

  // First request occupies the only worker...
  std::future<serve::ServeResponse> blocked = engine.Submit(MatchRequest());
  entered.get_future().wait();
  // ...two more fill the queue, the fourth must shed.
  std::future<serve::ServeResponse> q1 = engine.Submit(MatchRequest());
  std::future<serve::ServeResponse> q2 = engine.Submit(MatchRequest());
  serve::ServeResponse shed = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(shed.outcome, serve::Outcome::kShed);
  EXPECT_EQ(shed.shed_reason, "queue_full");
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_EQ(shed.status.code(), StatusCode::kFailedPrecondition);

  gate.set_value();
  EXPECT_EQ(blocked.get().outcome, serve::Outcome::kSuccess);
  EXPECT_EQ(q1.get().outcome, serve::Outcome::kSuccess);
  EXPECT_EQ(q2.get().outcome, serve::Outcome::kSuccess);
  engine.Stop();

  const serve::ServeStats stats = engine.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_LE(stats.peak_queue_depth, 2);
  EXPECT_TRUE(stats.Consistent());
}

TEST(ServeEngineTest, QueuedRequestTimesOutWhenDeadlineExpires) {
  std::atomic<int> calls{0};
  std::promise<void> entered;
  std::promise<void> gate;
  std::shared_future<void> gate_future(gate.get_future());

  serve::ServeConfig config;
  config.threads = 1;
  config.deadline_ms = 20.0;
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<GatedWorker>(&calls, 0, &entered,
                                         gate_future);
  });
  ASSERT_TRUE(engine.Start().ok());

  std::future<serve::ServeResponse> blocked = engine.Submit(MatchRequest());
  entered.get_future().wait();
  std::future<serve::ServeResponse> queued = engine.Submit(MatchRequest());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.set_value();

  // The toy worker ignores deadlines, so the blocked request completes.
  EXPECT_EQ(blocked.get().outcome, serve::Outcome::kSuccess);
  serve::ServeResponse late = queued.get();
  EXPECT_EQ(late.outcome, serve::Outcome::kTimeout);
  EXPECT_FALSE(late.status.ok());
  engine.Stop();

  const serve::ServeStats stats = engine.stats();
  EXPECT_EQ(stats.timeout, 1);
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_TRUE(stats.Consistent());
}

TEST(ServeEngineTest, TransientFailureRetriesAndSucceeds) {
  std::atomic<int> calls{0};
  serve::ServeConfig config;
  config.threads = 1;
  config.max_retries = 1;
  config.backoff_base_ms = 1.0;
  config.backoff_max_ms = 2.0;
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<FlakyWorker>(&calls, 1, StatusCode::kIOError);
  });
  ASSERT_TRUE(engine.Start().ok());

  serve::ServeResponse resp = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(resp.outcome, serve::Outcome::kSuccess);
  EXPECT_EQ(resp.attempts, 2);
  engine.Stop();
  const serve::ServeStats stats = engine.stats();
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.success, 1);
  EXPECT_TRUE(stats.Consistent());
}

TEST(ServeEngineTest, ExhaustedRetriesDegradeWithStatus) {
  std::atomic<int> calls{0};
  serve::ServeConfig config;
  config.threads = 1;
  config.max_retries = 1;
  config.backoff_base_ms = 1.0;
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<FlakyWorker>(&calls, 100, StatusCode::kIOError);
  });
  ASSERT_TRUE(engine.Start().ok());

  serve::ServeResponse resp = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(resp.outcome, serve::Outcome::kDegraded);
  EXPECT_EQ(resp.status.code(), StatusCode::kIOError);
  EXPECT_EQ(resp.attempts, 2);
  EXPECT_TRUE(resp.match.segments.empty()) << "terminal failure => empty";
  engine.Stop();
  EXPECT_EQ(engine.stats().retries, 1);
  EXPECT_TRUE(engine.stats().Consistent());
}

TEST(ServeEngineTest, PermanentFailureIsNotRetried) {
  std::atomic<int> calls{0};
  serve::ServeConfig config;
  config.threads = 1;
  config.max_retries = 3;
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<FlakyWorker>(&calls, 100,
                                         StatusCode::kInvalidArgument);
  });
  ASSERT_TRUE(engine.Start().ok());

  serve::ServeResponse resp = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(resp.outcome, serve::Outcome::kDegraded);
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(resp.attempts, 1);
  engine.Stop();
  EXPECT_EQ(engine.stats().retries, 0);
}

TEST(ServeEngineTest, HedgedAttemptWinsWhilePrimaryIsStuck) {
  std::atomic<int> calls{0};
  std::promise<void> entered;
  std::promise<void> gate;
  std::shared_future<void> gate_future(gate.get_future());

  serve::ServeConfig config;
  config.threads = 2;
  config.deadline_ms = 0.0;
  config.hedge_after_ms = 20.0;
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<GatedWorker>(&calls, 0, &entered,
                                         gate_future);
  });
  ASSERT_TRUE(engine.Start().ok());

  // The primary attempt (call 0) blocks; the hedge launches after 20ms on
  // the idle second worker and answers first.
  serve::ServeResponse resp = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(resp.outcome, serve::Outcome::kSuccess);
  EXPECT_TRUE(resp.hedge_won);
  gate.set_value();
  engine.Stop();

  const serve::ServeStats stats = engine.stats();
  EXPECT_EQ(stats.hedges_launched, 1);
  EXPECT_EQ(stats.hedge_wins, 1);
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_TRUE(stats.Consistent());
}

TEST(ServeEngineTest, RepeatedFailuresTripTheBreakerThenShed) {
  std::atomic<int> calls{0};
  serve::ServeConfig config;
  config.threads = 1;
  config.max_retries = 0;
  config.breaker = SmallBreaker();
  config.breaker.cooldown_ms = 60000.0;  // stays open for the test
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<FlakyWorker>(&calls, 100,
                                         StatusCode::kInvalidArgument);
  });
  ASSERT_TRUE(engine.Start().ok());

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.SubmitAndWait(MatchRequest()).outcome,
              serve::Outcome::kDegraded);
  }
  EXPECT_EQ(engine.breaker_state(serve::RequestKind::kMatch),
            serve::BreakerState::kOpen);

  serve::ServeResponse shed = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(shed.outcome, serve::Outcome::kShed);
  EXPECT_EQ(shed.shed_reason, "breaker_open");
  EXPECT_GT(shed.retry_after_ms, 0.0);

  // The recover class has its own breaker and is unaffected.
  EXPECT_EQ(engine.breaker_state(serve::RequestKind::kRecover),
            serve::BreakerState::kClosed);
  EXPECT_EQ(engine.SubmitAndWait(RecoverRequest()).outcome,
            serve::Outcome::kDegraded);

  engine.Stop();
  EXPECT_TRUE(engine.stats().Consistent());
}

TEST(ServeEngineTest, SloPressureShedsOnceP99ExceedsTheObjective) {
  serve::ServeConfig config;
  config.threads = 1;
  config.shed_p99_us = 0.001;  // any completion is slower than 1ns
  config.shed_p99_min_depth = 0;
  serve::ServeEngine engine(config, EchoFactory());
  ASSERT_TRUE(engine.Start().ok());

  // The latency window needs 32 samples before p99 pressure kicks in.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(engine.SubmitAndWait(MatchRequest()).outcome,
              serve::Outcome::kSuccess);
  }
  serve::ServeResponse shed = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(shed.outcome, serve::Outcome::kShed);
  EXPECT_EQ(shed.shed_reason, "slo_pressure");
  EXPECT_GT(engine.ObservedP99Us(), 0.0);
  engine.Stop();
  EXPECT_TRUE(engine.stats().Consistent());
}

TEST(ServeEngineTest, StopDrainsEveryPendingFuture) {
  serve::ServeConfig config;
  config.threads = 2;
  config.deadline_ms = 0.0;
  serve::ServeEngine engine(config, EchoFactory());
  ASSERT_TRUE(engine.Start().ok());

  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine.Submit(MatchRequest()));
  engine.Stop();
  for (auto& f : futures) {
    const serve::ServeResponse resp = f.get();  // must not hang
    EXPECT_TRUE(resp.outcome == serve::Outcome::kSuccess ||
                resp.outcome == serve::Outcome::kShed);
  }
  EXPECT_TRUE(engine.stats().Consistent());

  // Past Stop, admission sheds with the shutdown reason.
  serve::ServeResponse after = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(after.outcome, serve::Outcome::kShed);
  EXPECT_EQ(after.shed_reason, "shutdown");
  EXPECT_TRUE(engine.stats().Consistent());
}

TEST(ServeConfigTest, FromEnvAppliesOverridesAndIgnoresGarbage) {
  ::setenv("TRMMA_SERVE_THREADS", "7", 1);
  ::setenv("TRMMA_QUEUE_CAP", "9", 1);
  ::setenv("TRMMA_DEADLINE_MS", "123.5", 1);
  serve::ServeConfig config = serve::ServeConfig::FromEnv();
  EXPECT_EQ(config.threads, 7);
  EXPECT_EQ(config.queue_cap, 9);
  EXPECT_DOUBLE_EQ(config.deadline_ms, 123.5);

  ::setenv("TRMMA_SERVE_THREADS", "lots", 1);
  EXPECT_EQ(serve::ServeConfig::FromEnv().threads, 4) << "fallback on junk";

  ::unsetenv("TRMMA_SERVE_THREADS");
  ::unsetenv("TRMMA_QUEUE_CAP");
  ::unsetenv("TRMMA_DEADLINE_MS");
}

// ---------------------------------------------------------------------------
// Request-scoped tracing and exemplars

/// Restores the process trace mode and exemplar switch on scope exit so
/// tests can flip them freely.
class ServeObsGuard {
 public:
  ServeObsGuard()
      : mode_(obs::CurrentTraceMode()), exemplars_(obs::ExemplarsEnabled()) {}
  ~ServeObsGuard() {
    obs::SetTraceMode(mode_);
    obs::SetExemplarsEnabled(exemplars_);
  }

 private:
  obs::TraceMode mode_;
  bool exemplars_;
};

TEST(ServeTraceTest, ResponsesCarryDistinctNonzeroTraceIds) {
  serve::ServeConfig config;
  config.threads = 1;
  serve::ServeEngine engine(config, EchoFactory());
  ASSERT_TRUE(engine.Start().ok());

  const serve::ServeResponse a = engine.SubmitAndWait(MatchRequest());
  const serve::ServeResponse b = engine.SubmitAndWait(RecoverRequest());
  engine.Stop();

  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(b.trace_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(obs::TraceIdHex(a.trace_id).size(), 16u);
}

TEST(ServeTraceTest, HedgedAttemptsShareTraceIdWithDistinctSpans) {
  ServeObsGuard guard;
  obs::SetTraceMode(obs::TraceMode::kTrace);
  obs::TraceRing::Global().Clear();

  std::atomic<int> calls{0};
  std::promise<void> entered;
  std::promise<void> gate;
  std::shared_future<void> gate_future(gate.get_future());

  serve::ServeConfig config;
  config.threads = 2;
  config.deadline_ms = 0.0;
  config.hedge_after_ms = 20.0;
  serve::ServeEngine engine(config, [&](int) {
    return std::make_unique<GatedWorker>(&calls, 0, &entered, gate_future);
  });
  ASSERT_TRUE(engine.Start().ok());

  serve::ServeResponse resp = engine.SubmitAndWait(MatchRequest());
  EXPECT_EQ(resp.outcome, serve::Outcome::kSuccess);
  EXPECT_TRUE(resp.hedge_won);
  ASSERT_NE(resp.trace_id, 0u);
  gate.set_value();
  engine.Stop();  // joins workers: the stuck primary's span has completed

  // Both attempts (the stuck primary and the winning hedge) ran on
  // different worker threads, yet every span they opened must carry the
  // request's trace id, with distinct seqs and a flow link back to the
  // request-lane root span.
  int64_t root_seq = -1;
  int root_lane = 0;
  std::vector<int64_t> attempt_seqs;
  std::vector<int64_t> attempt_links;
  for (const obs::SpanRecord& s : obs::TraceRing::Global().Snapshot()) {
    if (s.trace_id != resp.trace_id || s.name == nullptr) continue;
    const std::string name = s.name;
    if (name == "serve.request") {
      root_seq = s.seq;
      root_lane = s.lane;
    } else if (name == "serve.attempt") {
      attempt_seqs.push_back(s.seq);
      attempt_links.push_back(s.link_seq);
    }
  }
  ASSERT_GE(root_seq, 0) << "request root span missing from the ring";
  EXPECT_GT(root_lane, 0) << "root must live on a synthetic request lane";
  ASSERT_EQ(attempt_seqs.size(), 2u);
  EXPECT_NE(attempt_seqs[0], attempt_seqs[1]);
  EXPECT_EQ(attempt_links[0], root_seq);
  EXPECT_EQ(attempt_links[1], root_seq);
}

TEST(ServeExemplarTest, EightThreadObserveAndScrapeStaysConsistent) {
  ServeObsGuard guard;
  obs::SetExemplarsEnabled(true);

  // Every writer observes value == trace_id, so any torn exemplar slot
  // (value paired with another write's trace id) is detectable on read.
  obs::MetricRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("serve.exemplar.hammer.us");
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};

  std::thread scraper([&] {
    obs::HistogramExemplar ex;
    int spins = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (hist->WorstExemplar(&ex) &&
          ex.value != static_cast<double>(ex.trace_id)) {
        torn.fetch_add(1);
      }
      // Exercise the full exposition path (exemplar rendering included)
      // at a lower duty cycle than the raw slot reads.
      if (++spins % 64 == 0) registry.WriteText();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([hist, t] {
      for (int i = 1; i <= 4000; ++i) {
        const uint64_t id =
            static_cast<uint64_t>(t + 1) * 1000000u + static_cast<uint64_t>(i);
        hist->Observe(static_cast<double>(id), id);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  scraper.join();

  EXPECT_EQ(torn.load(), 0) << "seqlock let a torn exemplar escape";
  obs::HistogramExemplar ex;
  ASSERT_TRUE(hist->WorstExemplar(&ex));
  EXPECT_EQ(ex.value, static_cast<double>(ex.trace_id));
  EXPECT_NE(ex.trace_id, 0u);
  EXPECT_EQ(hist->Count(), 8 * 4000);
}

}  // namespace
}  // namespace trmma
