// Hostile-input tests for the minimal JSON parser: everything here must
// fail with a loud Status (never UB, never unbounded recursion) so that a
// corrupt or malicious records/report/SLO file cannot take the process
// down. Run under ASan/UBSan by scripts/run_sanitized_tests.sh.

#include "obs/json_parse.h"

#include <gtest/gtest.h>

#include <string>

namespace trmma {
namespace obs {
namespace {

Status ParseStatus(const std::string& text) {
  StatusOr<JsonValue> doc = ParseJson(text);
  return doc.ok() ? Status::OK() : doc.status();
}

// ------------------------------------------------------------ happy paths

TEST(JsonParseTest, RoundTripsTheBasicShapes) {
  StatusOr<JsonValue> doc = ParseJson(
      R"({"s": "hi", "n": -2.5e3, "b": true, "z": null,
          "arr": [1, 2, 3], "obj": {"k": "v"}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("s").AsString(), "hi");
  EXPECT_DOUBLE_EQ(doc->Get("n").AsNumber(), -2500.0);
  EXPECT_TRUE(doc->Get("b").AsBool());
  EXPECT_TRUE(doc->Get("z").is_null());
  EXPECT_EQ(doc->Get("arr").AsArray().size(), 3u);
  EXPECT_EQ(doc->Get("obj").Get("k").AsString(), "v");
  // Missing members chain to the null sentinel instead of crashing.
  EXPECT_TRUE(doc->Get("nope").Get("deeper").is_null());
}

TEST(JsonParseTest, DecodesEscapesIncludingUnicode) {
  // A is ASCII, é a 2-byte code point, 中 a 3-byte one —
  // all three UTF-8 encoder branches.
  StatusOr<JsonValue> doc =
      ParseJson(R"({"s": "a\"b\\c\/d\n\t\r\b\f\u0041\u00e9\u4e2d"})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("s").AsString(),
            "a\"b\\c/d\n\t\r\b\f"
            "A\xC3\xA9\xE4\xB8\xAD");
}

// --------------------------------------------------------- nesting bombs

TEST(JsonParseTest, DeepArrayNestingBombFailsLoudly) {
  // 100k opening brackets: without the depth limit this is a stack
  // overflow; with it the parse must error out quickly at depth 64.
  std::string bomb(100000, '[');
  const Status status = ParseStatus(bomb);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("nesting too deep"), std::string::npos);
}

TEST(JsonParseTest, DeepObjectNestingBombFailsLoudly) {
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "{\"k\":";
  const Status status = ParseStatus(bomb);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("nesting too deep"), std::string::npos);
}

TEST(JsonParseTest, NestingJustUnderTheLimitStillParses)  {
  std::string doc;
  for (int i = 0; i < 60; ++i) doc += '[';
  doc += '1';
  for (int i = 0; i < 60; ++i) doc += ']';
  EXPECT_TRUE(ParseStatus(doc).ok());
}

// ------------------------------------------------------- malformed input

TEST(JsonParseTest, UnterminatedStringsAreErrors) {
  EXPECT_FALSE(ParseStatus(R"("never ends)").ok());
  EXPECT_FALSE(ParseStatus(R"({"key)").ok());
  EXPECT_FALSE(ParseStatus(R"({"k": "v)").ok());
  // Backslash as the very last byte must not read past the buffer.
  EXPECT_FALSE(ParseStatus("\"trailing\\").ok());
}

TEST(JsonParseTest, BadUnicodeEscapesAreErrors) {
  EXPECT_FALSE(ParseStatus(R"("\u12")").ok());      // truncated
  EXPECT_FALSE(ParseStatus(R"("\u12g4")").ok());    // non-hex digit
  EXPECT_FALSE(ParseStatus("\"\\u123").ok());       // cut mid-escape at EOF
  EXPECT_FALSE(ParseStatus(R"("\x41")").ok());      // unknown escape
}

TEST(JsonParseTest, DuplicateObjectKeysAreErrors) {
  const Status status = ParseStatus(R"({"k": 1, "k": 2})");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("duplicate object key"),
            std::string::npos);
  // Same key at different depths is fine.
  EXPECT_TRUE(ParseStatus(R"({"k": {"k": 1}})").ok());
}

TEST(JsonParseTest, TrailingGarbageIsAnError) {
  EXPECT_FALSE(ParseStatus("{} {}").ok());
  EXPECT_FALSE(ParseStatus("1 2").ok());
  EXPECT_FALSE(ParseStatus("null x").ok());
  // Trailing whitespace is allowed.
  EXPECT_TRUE(ParseStatus("{}  \n\t ").ok());
}

TEST(JsonParseTest, StructuralGarbageIsAnError) {
  EXPECT_FALSE(ParseStatus("").ok());
  EXPECT_FALSE(ParseStatus("   ").ok());
  EXPECT_FALSE(ParseStatus("{").ok());
  EXPECT_FALSE(ParseStatus("[1, 2").ok());
  EXPECT_FALSE(ParseStatus("[1 2]").ok());
  EXPECT_FALSE(ParseStatus("{\"k\" 1}").ok());
  EXPECT_FALSE(ParseStatus("{1: 2}").ok());
  EXPECT_FALSE(ParseStatus("{\"k\":}").ok());
  EXPECT_FALSE(ParseStatus("[,]").ok());
  EXPECT_FALSE(ParseStatus("tru").ok());
  EXPECT_FALSE(ParseStatus("nul").ok());
  EXPECT_FALSE(ParseStatus("falsy").ok());
}

TEST(JsonParseTest, MalformedNumbersAreErrors) {
  EXPECT_FALSE(ParseStatus("-").ok());
  EXPECT_FALSE(ParseStatus("1.2.3").ok());
  EXPECT_FALSE(ParseStatus("1e").ok());
  EXPECT_FALSE(ParseStatus("+-1").ok());
  // Huge exponents parse to inf rather than erroring — the writer never
  // emits them, and the double carries the overflow visibly.
  StatusOr<JsonValue> doc = ParseJson("1e999");
  if (doc.ok()) {
    EXPECT_TRUE(doc->is_number());
  }
}

TEST(JsonParseTest, ErrorsCarryTheBytePosition) {
  const Status status = ParseStatus("[1, 2, oops]");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("at byte"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace trmma
