#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "nn/ops.h"

namespace trmma {
namespace nn {
namespace {

namespace ops = nn::ops;

Matrix Make(int r, int c, std::initializer_list<double> vals) {
  Matrix m(r, c);
  int i = 0;
  for (double v : vals) m.data()[i++] = v;
  return m;
}

TEST(OpsForwardTest, InputHoldsValue) {
  Tape tape;
  Tensor t = ops::Input(tape, Make(1, 2, {3.0, -1.0}));
  EXPECT_DOUBLE_EQ(t.value().at(0, 1), -1.0);
  EXPECT_EQ(t.rows(), 1);
  EXPECT_EQ(t.cols(), 2);
}

TEST(OpsForwardTest, AddSubMulScale) {
  Tape tape;
  Tensor a = ops::Input(tape, Make(1, 2, {1.0, 2.0}));
  Tensor b = ops::Input(tape, Make(1, 2, {3.0, -4.0}));
  EXPECT_DOUBLE_EQ(ops::Add(a, b).value().at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(ops::Sub(a, b).value().at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(ops::Mul(a, b).value().at(0, 1), -8.0);
  EXPECT_DOUBLE_EQ(ops::Scale(a, -2.0).value().at(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(ops::OneMinus(a).value().at(0, 1), -1.0);
}

TEST(OpsForwardTest, Activations) {
  Tape tape;
  Tensor x = ops::Input(tape, Make(1, 3, {-1.0, 0.0, 2.0}));
  Tensor r = ops::Relu(x);
  EXPECT_DOUBLE_EQ(r.value().at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.value().at(0, 2), 2.0);
  Tensor s = ops::Sigmoid(x);
  EXPECT_NEAR(s.value().at(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(s.value().at(0, 2), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  Tensor t = ops::Tanh(x);
  EXPECT_NEAR(t.value().at(0, 0), std::tanh(-1.0), 1e-12);
}

TEST(OpsForwardTest, SoftmaxRowsNormalizes) {
  Tape tape;
  Tensor x = ops::Input(tape, Make(2, 3, {1, 2, 3, 100, 100, 100}));
  Tensor y = ops::SoftmaxRows(x);
  for (int r = 0; r < 2; ++r) {
    double sum = 0;
    for (int c = 0; c < 3; ++c) sum += y.value().at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_NEAR(y.value().at(1, 0), 1.0 / 3.0, 1e-12);  // stable at large logits
  EXPECT_GT(y.value().at(0, 2), y.value().at(0, 0));
}

TEST(OpsForwardTest, ConcatAndSlice) {
  Tape tape;
  Tensor a = ops::Input(tape, Make(2, 2, {1, 2, 3, 4}));
  Tensor b = ops::Input(tape, Make(2, 1, {9, 8}));
  Tensor cc = ops::ConcatCols(a, b);
  EXPECT_EQ(cc.cols(), 3);
  EXPECT_DOUBLE_EQ(cc.value().at(1, 2), 8.0);
  Tensor cr = ops::ConcatRows({a, a});
  EXPECT_EQ(cr.rows(), 4);
  EXPECT_DOUBLE_EQ(cr.value().at(3, 1), 4.0);
  Tensor sc = ops::SliceCols(a, 1, 1);
  EXPECT_DOUBLE_EQ(sc.value().at(0, 0), 2.0);
  Tensor sr = ops::SliceRows(a, 1, 1);
  EXPECT_DOUBLE_EQ(sr.value().at(0, 0), 3.0);
}

TEST(OpsForwardTest, TransposeRepeatMeanSum) {
  Tape tape;
  Tensor a = ops::Input(tape, Make(2, 3, {1, 2, 3, 4, 5, 6}));
  Tensor t = ops::Transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t.value().at(2, 1), 6.0);
  Tensor m = ops::MeanRows(a);
  EXPECT_DOUBLE_EQ(m.value().at(0, 0), 2.5);
  Tensor s = ops::SumAll(a);
  EXPECT_DOUBLE_EQ(s.value().at(0, 0), 21.0);
  Tensor row = ops::Input(tape, Make(1, 2, {5, 6}));
  Tensor rep = ops::RepeatRows(row, 3);
  EXPECT_EQ(rep.rows(), 3);
  EXPECT_DOUBLE_EQ(rep.value().at(2, 1), 6.0);
}

TEST(OpsForwardTest, MatMulValues) {
  Tape tape;
  Tensor a = ops::Input(tape, Make(2, 2, {1, 2, 3, 4}));
  Tensor b = ops::Input(tape, Make(2, 1, {1, 1}));
  Tensor c = ops::MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.value().at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.value().at(1, 0), 7.0);
}

TEST(OpsForwardTest, AffineAppliesBias) {
  Tape tape;
  Rng rng(1);
  Param w("w", Make(2, 2, {1, 0, 0, 1}));
  Param b("b", Make(1, 2, {10, 20}));
  Tensor x = ops::Input(tape, Make(1, 2, {1, 2}));
  Tensor y = ops::Affine(x, w, b);
  EXPECT_DOUBLE_EQ(y.value().at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(y.value().at(0, 1), 22.0);
}

TEST(OpsForwardTest, EmbeddingLookupGathers) {
  Tape tape;
  Param table("t", Make(3, 2, {0, 1, 10, 11, 20, 21}));
  Tensor e = ops::EmbeddingLookup(tape, table, {2, 0, 2});
  EXPECT_EQ(e.rows(), 3);
  EXPECT_DOUBLE_EQ(e.value().at(0, 1), 21.0);
  EXPECT_DOUBLE_EQ(e.value().at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(e.value().at(2, 0), 20.0);
}

TEST(OpsForwardTest, BceWithLogitsKnownValues) {
  Tape tape;
  Tensor z = ops::Input(tape, Make(2, 1, {0.0, 0.0}));
  Matrix y = Make(2, 1, {1.0, 0.0});
  Tensor loss = ops::BceWithLogits(z, std::move(y));
  // -log(0.5) for each element.
  EXPECT_NEAR(loss.value().at(0, 0), 2.0 * std::log(2.0), 1e-12);
}

TEST(OpsForwardTest, BceStableAtExtremeLogits) {
  Tape tape;
  Tensor z = ops::Input(tape, Make(1, 2, {500.0, -500.0}));
  Matrix y = Make(1, 2, {1.0, 0.0});
  Tensor loss = ops::BceWithLogits(z, std::move(y));
  EXPECT_NEAR(loss.value().at(0, 0), 0.0, 1e-9);
  EXPECT_TRUE(std::isfinite(loss.value().at(0, 0)));
}

TEST(OpsForwardTest, L1LossKnownValue) {
  Tape tape;
  Tensor p = ops::Input(tape, Make(1, 3, {1.0, 2.0, 3.0}));
  Tensor loss = ops::L1Loss(p, Make(1, 3, {0.0, 2.0, 5.0}));
  EXPECT_DOUBLE_EQ(loss.value().at(0, 0), 3.0);
}

TEST(OpsForwardTest, SoftmaxCrossEntropyKnownValue) {
  Tape tape;
  Tensor z = ops::Input(tape, Make(1, 3, {0.0, 0.0, 0.0}));
  Tensor loss = ops::SoftmaxCrossEntropy(z, {1});
  EXPECT_NEAR(loss.value().at(0, 0), std::log(3.0), 1e-12);
}

TEST(OpsForwardTest, LayerNormZeroMeanUnitVar) {
  Tape tape;
  Param gamma("g", Matrix(1, 4, 1.0));
  Param beta("b", Matrix(1, 4));
  Tensor x = ops::Input(tape, Make(1, 4, {1, 2, 3, 4}));
  Tensor y = ops::LayerNormRows(x, gamma, beta);
  double mean = 0;
  double var = 0;
  for (int c = 0; c < 4; ++c) mean += y.value().at(0, c);
  mean /= 4;
  for (int c = 0; c < 4; ++c) {
    var += (y.value().at(0, c) - mean) * (y.value().at(0, c) - mean);
  }
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var / 4, 1.0, 1e-4);
}

}  // namespace
}  // namespace nn
}  // namespace trmma
