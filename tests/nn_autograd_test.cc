#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"

namespace trmma {
namespace nn {
namespace {

namespace ops = nn::ops;

/// Builds a parameter with random entries.
Param RandomParam(const std::string& name, int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(-0.8, 0.8);
  return Param(name, std::move(m));
}

/// Runs a gradient check for a loss builder over one parameter and asserts
/// it passes.
void ExpectGradOk(Param& p, const std::function<Tensor(Tape&)>& loss_fn,
                  double tol = 2e-6) {
  auto result = CheckGradients(loss_fn, {&p}, 1e-6, tol, 0);
  EXPECT_TRUE(result.ok) << "max rel error " << result.max_rel_error;
}

TEST(AutogradTest, FromParamGradient) {
  Param p = RandomParam("p", 2, 3, 1);
  ExpectGradOk(p, [&](Tape& tape) {
    return ops::SumAll(ops::FromParam(tape, p));
  });
}

TEST(AutogradTest, MatMulParamGradient) {
  Param w = RandomParam("w", 3, 2, 2);
  ExpectGradOk(w, [&](Tape& tape) {
    Tensor x = ops::Input(tape, RandomParam("x", 4, 3, 3).value);
    return ops::SumAll(ops::Sigmoid(ops::MatMulParam(x, w)));
  });
}

TEST(AutogradTest, MatMulBothSidesGradient) {
  Param a = RandomParam("a", 2, 3, 4);
  Param b = RandomParam("b", 3, 2, 5);
  auto loss_fn = [&](Tape& tape) {
    Tensor ta = ops::FromParam(tape, a);
    Tensor tb = ops::FromParam(tape, b);
    return ops::SumAll(ops::Tanh(ops::MatMul(ta, tb)));
  };
  auto result = CheckGradients(loss_fn, {&a, &b}, 1e-6, 2e-6, 0);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(AutogradTest, AffineGradient) {
  Param w = RandomParam("w", 3, 2, 6);
  Param b = RandomParam("b", 1, 2, 7);
  auto loss_fn = [&](Tape& tape) {
    Tensor x = ops::Input(tape, RandomParam("x", 5, 3, 8).value);
    return ops::SumAll(ops::Sigmoid(ops::Affine(x, w, b)));
  };
  auto result = CheckGradients(loss_fn, {&w, &b}, 1e-6, 2e-6, 0);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(AutogradTest, EmbeddingGradientWithRepeats) {
  Param table = RandomParam("t", 4, 3, 9);
  ExpectGradOk(table, [&](Tape& tape) {
    // Index 2 appears twice: its gradient must accumulate.
    Tensor e = ops::EmbeddingLookup(tape, table, {2, 0, 2});
    return ops::SumAll(ops::Mul(e, e));
  });
}

TEST(AutogradTest, AddSubMulGradients) {
  Param p = RandomParam("p", 2, 2, 10);
  ExpectGradOk(p, [&](Tape& tape) {
    Tensor a = ops::FromParam(tape, p);
    Tensor b = ops::Scale(a, 0.5);
    Tensor c = ops::Add(ops::Mul(a, b), ops::Sub(a, b));
    return ops::SumAll(ops::Mul(c, c));
  });
}

TEST(AutogradTest, OneMinusGradient) {
  Param p = RandomParam("p", 1, 4, 11);
  ExpectGradOk(p, [&](Tape& tape) {
    Tensor a = ops::FromParam(tape, p);
    return ops::SumAll(ops::Mul(ops::OneMinus(a), ops::OneMinus(a)));
  });
}

TEST(AutogradTest, ReluGradient) {
  // Entries away from the kink so the numeric derivative is clean.
  Param p("p", Matrix(1, 4));
  p.value.at(0, 0) = -0.7;
  p.value.at(0, 1) = 0.9;
  p.value.at(0, 2) = -0.2;
  p.value.at(0, 3) = 0.4;
  ExpectGradOk(p, [&](Tape& tape) {
    Tensor a = ops::Relu(ops::FromParam(tape, p));
    return ops::SumAll(ops::Mul(a, a));
  });
}

TEST(AutogradTest, SigmoidTanhGradients) {
  Param p = RandomParam("p", 2, 3, 12);
  ExpectGradOk(p, [&](Tape& tape) {
    Tensor a = ops::FromParam(tape, p);
    return ops::SumAll(ops::Mul(ops::Sigmoid(a), ops::Tanh(a)));
  });
}

TEST(AutogradTest, SoftmaxGradient) {
  Param p = RandomParam("p", 3, 4, 13);
  ExpectGradOk(p, [&](Tape& tape) {
    Tensor y = ops::SoftmaxRows(ops::FromParam(tape, p));
    // Weighted sum so the gradient is not identically zero.
    Tensor w = ops::Input(tape, RandomParam("w", 3, 4, 14).value);
    return ops::SumAll(ops::Mul(y, w));
  });
}

TEST(AutogradTest, LayerNormGradient) {
  Param x = RandomParam("x", 3, 5, 15);
  Param gamma("g", Matrix(1, 5, 1.0));
  Param beta("b", Matrix(1, 5));
  auto loss_fn = [&](Tape& tape) {
    Tensor y = ops::LayerNormRows(ops::FromParam(tape, x), gamma, beta);
    Tensor w = ops::Input(tape, RandomParam("w", 3, 5, 16).value);
    return ops::SumAll(ops::Mul(y, w));
  };
  auto result = CheckGradients(loss_fn, {&x, &gamma, &beta}, 1e-6, 5e-6, 0);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(AutogradTest, ConcatSliceTransposeGradients) {
  Param p = RandomParam("p", 3, 4, 17);
  ExpectGradOk(p, [&](Tape& tape) {
    Tensor a = ops::FromParam(tape, p);
    Tensor cat = ops::ConcatCols(a, ops::Transpose(ops::SliceCols(a, 0, 3)));
    Tensor rows = ops::ConcatRows({cat, cat});
    Tensor sl = ops::SliceRows(rows, 1, 4);
    return ops::SumAll(ops::Mul(sl, sl));
  });
}

TEST(AutogradTest, RepeatMeanGradients) {
  Param p = RandomParam("p", 1, 4, 18);
  ExpectGradOk(p, [&](Tape& tape) {
    Tensor a = ops::FromParam(tape, p);
    Tensor rep = ops::RepeatRows(a, 5);
    Tensor mean = ops::MeanRows(ops::Mul(rep, rep));
    return ops::SumAll(mean);
  });
}

TEST(AutogradTest, BceWithLogitsGradient) {
  Param p = RandomParam("p", 4, 1, 19);
  Matrix labels(4, 1);
  labels.at(1, 0) = 1.0;
  ExpectGradOk(p, [&](Tape& tape) {
    Matrix y = labels;
    return ops::BceWithLogits(ops::FromParam(tape, p), std::move(y));
  });
}

TEST(AutogradTest, L1LossGradient) {
  // Keep entries away from the target so the |.| kink is not crossed.
  Param p("p", Matrix(1, 3));
  p.value.at(0, 0) = 0.5;
  p.value.at(0, 1) = -0.7;
  p.value.at(0, 2) = 0.9;
  ExpectGradOk(p, [&](Tape& tape) {
    return ops::L1Loss(ops::Sigmoid(ops::FromParam(tape, p)),
                       Matrix(1, 3, 0.0));
  });
}

TEST(AutogradTest, SoftmaxCrossEntropyGradient) {
  Param p = RandomParam("p", 3, 5, 20);
  ExpectGradOk(p, [&](Tape& tape) {
    return ops::SoftmaxCrossEntropy(ops::FromParam(tape, p), {1, 4, 0});
  });
}

TEST(AutogradTest, DeepCompositeGraphGradient) {
  Param w1 = RandomParam("w1", 4, 6, 21);
  Param b1 = RandomParam("b1", 1, 6, 22);
  Param w2 = RandomParam("w2", 6, 1, 23);
  auto loss_fn = [&](Tape& tape) {
    Tensor x = ops::Input(tape, RandomParam("x", 3, 4, 24).value);
    Tensor h = ops::Relu(ops::Affine(x, w1, b1));
    Tensor out = ops::Sigmoid(ops::MatMulParam(h, w2));
    return ops::L1Loss(out, Matrix(3, 1, 1.0));
  };
  auto result = CheckGradients(loss_fn, {&w1, &b1, &w2}, 1e-6, 5e-6, 0);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(AutogradTest, GradientsAccumulateAcrossBackwardCalls) {
  Param p("p", Matrix(1, 1, 2.0));
  for (int i = 0; i < 3; ++i) {
    Tape tape;
    Tensor loss = ops::SumAll(ops::Mul(ops::FromParam(tape, p),
                                       ops::FromParam(tape, p)));
    tape.Backward(loss);
  }
  // d(x^2)/dx = 2x = 4, accumulated 3 times.
  EXPECT_NEAR(p.grad.at(0, 0), 12.0, 1e-9);
}

TEST(AutogradTest, TapeClearInvalidatesNothingForParams) {
  Param p("p", Matrix(1, 1, 3.0));
  Tape tape;
  Tensor loss = ops::SumAll(ops::FromParam(tape, p));
  tape.Backward(loss);
  tape.Clear();
  EXPECT_EQ(tape.num_nodes(), 0);
  EXPECT_NEAR(p.grad.at(0, 0), 1.0, 1e-12);
}

TEST(AutogradTest, GradCheckDetectsBrokenGradient) {
  // A deliberately wrong "loss" pairing: analytic grad of sum(x) is 1, but
  // we perturb the evaluation to 2*sum(x) after computing gradients once.
  Param p("p", Matrix(1, 2, 0.5));
  bool first = true;
  auto loss_fn = [&](Tape& tape) -> Tensor {
    Tensor x = ops::FromParam(tape, p);
    if (first) {
      first = false;
      return ops::SumAll(x);
    }
    return ops::SumAll(ops::Scale(x, 2.0));
  };
  auto result = CheckGradients(loss_fn, {&p}, 1e-6, 1e-4, 0);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace nn
}  // namespace trmma
