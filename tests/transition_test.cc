#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/transition_stats.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(TransitionStatsTest, CountsRoutes) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  TransitionStats stats(*g);
  // Find the eastbound chain.
  std::vector<SegmentId> east;
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    if (g->segment(i).to == g->segment(i).from + 1) east.push_back(i);
  }
  ASSERT_EQ(east.size(), 3u);
  stats.AddRoute({east[0], east[1], east[2]});
  stats.AddRoute({east[0], east[1]});
  EXPECT_EQ(stats.Count(east[0], east[1]), 2);
  EXPECT_EQ(stats.Count(east[1], east[2]), 1);
  EXPECT_EQ(stats.Count(east[2], east[0]), 0);
  EXPECT_EQ(stats.TotalFrom(east[0]), 2);
}

TEST(TransitionStatsTest, ProbabilitySumsToOneOverSuccessors) {
  auto g = test::MakeCityNetwork();
  ASSERT_NE(g, nullptr);
  TransitionStats stats(*g);
  // Add some random routes.
  ShortestPathEngine engine(*g);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    auto r = engine.NodeToNode(
        static_cast<NodeId>(rng.UniformInt(g->num_nodes())),
        static_cast<NodeId>(rng.UniformInt(g->num_nodes())));
    if (r.found) stats.AddRoute(r.segments);
  }
  for (SegmentId e = 0; e < g->num_segments(); ++e) {
    if (g->NextSegments(e).empty()) continue;
    double total = 0.0;
    for (SegmentId n : g->NextSegments(e)) total += stats.Probability(e, n);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TransitionStatsTest, ObservedTransitionMoreLikely) {
  auto g = test::MakeGrid(3, 3, 100.0);
  ASSERT_NE(g, nullptr);
  TransitionStats stats(*g);
  SegmentId e = 0;
  const auto& nexts = g->NextSegments(e);
  ASSERT_GE(nexts.size(), 2u);
  for (int i = 0; i < 10; ++i) stats.AddRoute({e, nexts[0]});
  EXPECT_GT(stats.Probability(e, nexts[0]), stats.Probability(e, nexts[1]));
}

TEST(DaRoutePlannerTest, PlansConnectedRoutes) {
  auto g = test::MakeCityNetwork(5);
  ASSERT_NE(g, nullptr);
  TransitionStats stats(*g);
  DaRoutePlanner planner(*g, stats);
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    SegmentId a = static_cast<SegmentId>(rng.UniformInt(g->num_segments()));
    SegmentId b = static_cast<SegmentId>(rng.UniformInt(g->num_segments()));
    auto r = planner.Plan(a, b);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.segments.front(), a);
    EXPECT_EQ(r.segments.back(), b);
    EXPECT_TRUE(IsConnectedRoute(*g, r.segments));
  }
}

TEST(DaRoutePlannerTest, SameSegmentTrivial) {
  auto g = test::MakeGrid(3, 3);
  ASSERT_NE(g, nullptr);
  TransitionStats stats(*g);
  DaRoutePlanner planner(*g, stats);
  auto r = planner.Plan(5, 5);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.segments, Route{5});
}

TEST(DaRoutePlannerTest, PrefersPopularDetour) {
  // Grid with two equal-length L-shaped routes from corner to corner of a
  // 2x2 block; history makes one of them popular.
  auto g = test::MakeGrid(3, 3, 100.0);
  ASSERT_NE(g, nullptr);
  ShortestPathEngine engine(*g);
  // From node 0 (SW) to node 8 (NE) there are several 400m paths.
  auto base = engine.NodeToNode(0, 8);
  ASSERT_TRUE(base.found);
  TransitionStats stats(*g);
  // Teach the planner an alternative: go north first (via node 3, 6, 7, 8).
  auto north_first = engine.NodeToNode(0, 6);
  auto then_east = engine.NodeToNode(6, 8);
  ASSERT_TRUE(north_first.found);
  ASSERT_TRUE(then_east.found);
  Route taught = north_first.segments;
  for (SegmentId s : then_east.segments) taught.push_back(s);
  for (int i = 0; i < 50; ++i) stats.AddRoute(taught);

  DaRoutePlanner planner(*g, stats);
  auto planned = planner.Plan(taught.front(), taught.back());
  ASSERT_TRUE(planned.found);
  EXPECT_EQ(planned.segments, taught);
}

TEST(DaRoutePlannerTest, BudgetExhaustionReturnsNotFound) {
  auto g = test::MakeGrid(10, 1, 100.0);
  ASSERT_NE(g, nullptr);
  TransitionStats stats(*g);
  DaRoutePlanner planner(*g, stats);
  std::vector<SegmentId> east;
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    if (g->segment(i).to == g->segment(i).from + 1) east.push_back(i);
  }
  auto r = planner.Plan(east.front(), east.back(), /*max_cost=*/50.0);
  EXPECT_FALSE(r.found);
}

}  // namespace
}  // namespace trmma
