#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/csv.h"
#include "traj/dataset.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(DatasetSplitTest, PartitionsAllSamples) {
  Dataset ds = test::MakeTinyDataset("XA", 40);
  Rng rng(1);
  ds.Split(0.4, 0.3, rng);
  std::set<int> all;
  for (int i : ds.train_idx) all.insert(i);
  for (int i : ds.val_idx) all.insert(i);
  for (int i : ds.test_idx) all.insert(i);
  EXPECT_EQ(all.size(), ds.samples.size());
  EXPECT_EQ(ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size(),
            ds.samples.size());
  EXPECT_EQ(ds.train_idx.size(), 16u);
  EXPECT_EQ(ds.val_idx.size(), 12u);
}

TEST(DatasetSplitTest, DisjointSplits) {
  Dataset ds = test::MakeTinyDataset("XA", 30);
  Rng rng(2);
  ds.Split(0.5, 0.25, rng);
  std::set<int> train(ds.train_idx.begin(), ds.train_idx.end());
  for (int i : ds.val_idx) EXPECT_EQ(train.count(i), 0u);
  for (int i : ds.test_idx) EXPECT_EQ(train.count(i), 0u);
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  Dataset ds = test::MakeTinyDataset("XA", 12);
  const std::string path = testing::TempDir() + "/trmma_dataset_test.txt";
  ASSERT_TRUE(SaveDataset(ds, path).ok());
  auto loaded_or = LoadDataset(path);
  ASSERT_TRUE(loaded_or.ok());
  const Dataset& loaded = loaded_or.value();

  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_DOUBLE_EQ(loaded.epsilon_s, ds.epsilon_s);
  EXPECT_DOUBLE_EQ(loaded.gamma, ds.gamma);
  ASSERT_NE(loaded.network, nullptr);
  EXPECT_EQ(loaded.network->num_nodes(), ds.network->num_nodes());
  EXPECT_EQ(loaded.network->num_segments(), ds.network->num_segments());
  ASSERT_EQ(loaded.samples.size(), ds.samples.size());
  for (size_t s = 0; s < ds.samples.size(); ++s) {
    const auto& a = ds.samples[s];
    const auto& b = loaded.samples[s];
    ASSERT_EQ(a.raw.size(), b.raw.size());
    for (int i = 0; i < a.raw.size(); ++i) {
      EXPECT_NEAR(a.raw.points[i].pos.lat, b.raw.points[i].pos.lat, 1e-8);
      EXPECT_NEAR(a.raw.points[i].t, b.raw.points[i].t, 1e-6);
      EXPECT_EQ(a.truth[i].segment, b.truth[i].segment);
      EXPECT_NEAR(a.truth[i].ratio, b.truth[i].ratio, 1e-8);
    }
    EXPECT_EQ(a.route, b.route);
    EXPECT_EQ(a.sparse_indices, b.sparse_indices);
    EXPECT_EQ(a.sparse.size(), b.sparse.size());
  }
  EXPECT_EQ(loaded.train_idx, ds.train_idx);
  EXPECT_EQ(loaded.test_idx, ds.test_idx);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadDataset("/nonexistent/ds.txt").ok());
}

TEST(DatasetIoTest, LoadMalformedFails) {
  const std::string path = testing::TempDir() + "/trmma_bad_dataset.txt";
  ASSERT_TRUE(csv::WriteFile(path, {{"NOT_A_DATASET"}}).ok());
  EXPECT_FALSE(LoadDataset(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, SaveWithoutNetworkFails) {
  Dataset ds;
  EXPECT_EQ(SaveDataset(ds, testing::TempDir() + "/x.txt").code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatasetIoTest, MalformedNetworkRowIsStructuralError) {
  const std::string path = testing::TempDir() + "/trmma_bad_node.txt";
  ASSERT_TRUE(csv::WriteFile(path, {{"DATASET", "XA", "15", "0.1"},
                                    {"NODE", "31.0", "not_a_number"}})
                  .ok());
  auto loaded = LoadDataset(path);
  ASSERT_FALSE(loaded.ok());
  // file:line context so the bad row can be found in a multi-MB dump.
  EXPECT_NE(loaded.status().message().find(path + ":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BadSampleRowsAreSkippedNotFatal) {
  // Save a valid 4-sample dataset, then vandalize one PT row of the second
  // sample. The load must succeed, drop exactly that sample, and remap the
  // split indices onto the survivors.
  Dataset ds = test::MakeTinyDataset("XA", 4);
  Rng rng(7);
  ds.Split(0.5, 0.25, rng);
  const std::string path = testing::TempDir() + "/trmma_vandalized.txt";
  ASSERT_TRUE(SaveDataset(ds, path).ok());

  auto table_or = csv::ReadTable(path);
  ASSERT_TRUE(table_or.ok());
  auto rows = table_or.value().rows;
  int sample_no = 0;
  bool vandalized = false;
  for (auto& row : rows) {
    if (row[0] == "SAMPLE") ++sample_no;
    if (sample_no == 2 && row[0] == "PT" && !vandalized) {
      row[1] = "##corrupt##";
      vandalized = true;
    }
  }
  ASSERT_TRUE(vandalized);
  // Also splice in rows that belong to no sample and an unknown tag.
  rows.push_back({"WHATEVER", "1", "2"});
  ASSERT_TRUE(csv::WriteFile(path, rows).ok());

  auto loaded_or = LoadDataset(path);
  ASSERT_TRUE(loaded_or.ok());
  const Dataset& loaded = loaded_or.value();
  EXPECT_EQ(loaded.samples.size(), ds.samples.size() - 1);
  const size_t split_total = loaded.train_idx.size() + loaded.val_idx.size() +
                             loaded.test_idx.size();
  EXPECT_EQ(split_total, loaded.samples.size());
  for (int i : loaded.train_idx) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, static_cast<int>(loaded.samples.size()));
  }
  // Survivors are intact, fully usable samples.
  for (const auto& sample : loaded.samples) {
    EXPECT_EQ(sample.raw.size(), static_cast<int>(sample.truth.size()));
    EXPECT_EQ(sample.sparse.size(),
              static_cast<int>(sample.sparse_indices.size()));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trmma
