#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/csv.h"
#include "traj/dataset.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(DatasetSplitTest, PartitionsAllSamples) {
  Dataset ds = test::MakeTinyDataset("XA", 40);
  Rng rng(1);
  ds.Split(0.4, 0.3, rng);
  std::set<int> all;
  for (int i : ds.train_idx) all.insert(i);
  for (int i : ds.val_idx) all.insert(i);
  for (int i : ds.test_idx) all.insert(i);
  EXPECT_EQ(all.size(), ds.samples.size());
  EXPECT_EQ(ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size(),
            ds.samples.size());
  EXPECT_EQ(ds.train_idx.size(), 16u);
  EXPECT_EQ(ds.val_idx.size(), 12u);
}

TEST(DatasetSplitTest, DisjointSplits) {
  Dataset ds = test::MakeTinyDataset("XA", 30);
  Rng rng(2);
  ds.Split(0.5, 0.25, rng);
  std::set<int> train(ds.train_idx.begin(), ds.train_idx.end());
  for (int i : ds.val_idx) EXPECT_EQ(train.count(i), 0u);
  for (int i : ds.test_idx) EXPECT_EQ(train.count(i), 0u);
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  Dataset ds = test::MakeTinyDataset("XA", 12);
  const std::string path = testing::TempDir() + "/trmma_dataset_test.txt";
  ASSERT_TRUE(SaveDataset(ds, path).ok());
  auto loaded_or = LoadDataset(path);
  ASSERT_TRUE(loaded_or.ok());
  const Dataset& loaded = loaded_or.value();

  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_DOUBLE_EQ(loaded.epsilon_s, ds.epsilon_s);
  EXPECT_DOUBLE_EQ(loaded.gamma, ds.gamma);
  ASSERT_NE(loaded.network, nullptr);
  EXPECT_EQ(loaded.network->num_nodes(), ds.network->num_nodes());
  EXPECT_EQ(loaded.network->num_segments(), ds.network->num_segments());
  ASSERT_EQ(loaded.samples.size(), ds.samples.size());
  for (size_t s = 0; s < ds.samples.size(); ++s) {
    const auto& a = ds.samples[s];
    const auto& b = loaded.samples[s];
    ASSERT_EQ(a.raw.size(), b.raw.size());
    for (int i = 0; i < a.raw.size(); ++i) {
      EXPECT_NEAR(a.raw.points[i].pos.lat, b.raw.points[i].pos.lat, 1e-8);
      EXPECT_NEAR(a.raw.points[i].t, b.raw.points[i].t, 1e-6);
      EXPECT_EQ(a.truth[i].segment, b.truth[i].segment);
      EXPECT_NEAR(a.truth[i].ratio, b.truth[i].ratio, 1e-8);
    }
    EXPECT_EQ(a.route, b.route);
    EXPECT_EQ(a.sparse_indices, b.sparse_indices);
    EXPECT_EQ(a.sparse.size(), b.sparse.size());
  }
  EXPECT_EQ(loaded.train_idx, ds.train_idx);
  EXPECT_EQ(loaded.test_idx, ds.test_idx);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadDataset("/nonexistent/ds.txt").ok());
}

TEST(DatasetIoTest, LoadMalformedFails) {
  const std::string path = testing::TempDir() + "/trmma_bad_dataset.txt";
  ASSERT_TRUE(csv::WriteFile(path, {{"NOT_A_DATASET"}}).ok());
  EXPECT_FALSE(LoadDataset(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, SaveWithoutNetworkFails) {
  Dataset ds;
  EXPECT_EQ(SaveDataset(ds, testing::TempDir() + "/x.txt").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace trmma
