#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "nn/adam.h"
#include "nn/telemetry.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "obs/train_log.h"

namespace trmma {
namespace obs {
namespace {

/// Points the global TrainLogger at a fresh temp file for one test and
/// detaches + clears aggregates on exit.
class LoggerGuard {
 public:
  explicit LoggerGuard(const std::string& tag) {
    path_ = ::testing::TempDir() + "trmma_train_log_" + tag + ".jsonl";
    TrainLogger::Global().ResetSummary();
    TrainLogger::Global().SetFile(path_);
  }
  ~LoggerGuard() {
    TrainLogger::Global().SetFile("");
    TrainLogger::Global().ResetSummary();
    std::remove(path_.c_str());
  }

  const std::string& path() const { return path_; }

  std::vector<std::string> Lines() const {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

 private:
  std::string path_;
};

TrainStepRow MakeRow(const char* model, int64_t step, double loss,
                     double grad_norm) {
  TrainStepRow row;
  row.model = model;
  row.step = step;
  row.loss = loss;
  row.grad_norm = grad_norm;
  row.param_norm = 10.0;
  row.update_ratio = 0.001;
  row.examples = 16;
  row.examples_per_sec = 800.0;
  row.peak_bytes = 1 << 20;
  return row;
}

// ------------------------------------------------------------------ JSONL

TEST(TrainLoggerTest, WritesOneJsonLinePerStep) {
  LoggerGuard guard("basic");
  EXPECT_TRUE(TrainLogger::Global().Enabled());
  TrainLogger::Global().LogStep(MakeRow("mma", 1, 0.7, 2.0));
  TrainLogger::Global().LogStep(MakeRow("mma", 2, 0.6, 1.5));

  const std::vector<std::string> lines = guard.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"model\":\"mma\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"step\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"loss\":0.7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"grad_norm\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"param_norm\":10"), std::string::npos);
  EXPECT_NE(lines[0].find("\"update_ratio\":0.001"), std::string::npos);
  EXPECT_NE(lines[0].find("\"examples\":16"), std::string::npos);
  EXPECT_NE(lines[0].find("\"peak_bytes\":1048576"), std::string::npos);
  EXPECT_NE(lines[1].find("\"step\":2"), std::string::npos);
}

TEST(TrainLoggerTest, SummaryAggregatesPerModel) {
  LoggerGuard guard("summary");
  TrainLogger::Global().LogStep(MakeRow("mma", 1, 0.8, 2.0));
  TrainLogger::Global().LogStep(MakeRow("mma", 2, 0.4, 4.0));
  TrainLogger::Global().LogStep(MakeRow("trmma", 1, 1.5, 0.5));

  EXPECT_TRUE(TrainLogger::Global().HasRows());
  const std::string summary = TrainLogger::Global().SummaryJson();
  EXPECT_NE(summary.find("\"model\":\"mma\""), std::string::npos);
  EXPECT_NE(summary.find("\"model\":\"trmma\""), std::string::npos);
  EXPECT_NE(summary.find("\"steps\":2"), std::string::npos);
  EXPECT_NE(summary.find("\"last_loss\":0.4"), std::string::npos);
  // mean of 0.8 and 0.4
  EXPECT_NE(summary.find("\"mean_loss\":0.6"), std::string::npos);
  EXPECT_NE(summary.find("\"max_grad_norm\":4"), std::string::npos);

  TrainLogger::Global().ResetSummary();
  EXPECT_FALSE(TrainLogger::Global().HasRows());
  EXPECT_EQ(TrainLogger::Global().SummaryJson(), "[]");
}

// -------------------------------------------------------------- anomalies

TEST(TrainLoggerTest, CountsNonFiniteLossAnomalies) {
  LoggerGuard guard("nan");
  Counter* bad =
      MetricRegistry::Global().GetCounter("train.anomaly.nonfinite_loss");
  const int64_t before = bad->Value();
  TrainLogger::Global().LogStep(
      MakeRow("mma", 1, std::numeric_limits<double>::quiet_NaN(), 1.0));
  TrainLogger::Global().LogStep(
      MakeRow("mma", 2, std::numeric_limits<double>::infinity(), 1.0));
  TrainLogger::Global().LogStep(MakeRow("mma", 3, 0.5, 1.0));
  EXPECT_EQ(bad->Value() - before, 2);

  const std::string summary = TrainLogger::Global().SummaryJson();
  EXPECT_NE(summary.find("\"anomalies\":2"), std::string::npos);
  // The JSONL line still appears (JsonWriter maps non-finite to 0), so the
  // log keeps one row per step even through a blow-up.
  EXPECT_EQ(guard.Lines().size(), 3u);
}

TEST(TrainLoggerTest, CountsExplodingGradientAnomalies) {
  LoggerGuard guard("explode");
  Counter* bad =
      MetricRegistry::Global().GetCounter("train.anomaly.exploding_grad");
  const int64_t before = bad->Value();
  TrainLogger::Global().LogStep(MakeRow("trmma", 1, 0.5, 5e3));
  TrainLogger::Global().LogStep(MakeRow("trmma", 2, 0.5, 2.0));
  EXPECT_EQ(bad->Value() - before, 1);
}

// ----------------------------------------------------- telemetry bridge

TEST(LogTrainStepTest, PublishesOptimizerStateAsRow) {
  LoggerGuard guard("adam");
  nn::Param w("w", nn::Matrix(2, 2, 1.0));
  w.grad.Fill(0.5);
  nn::Adam opt({&w}, 1e-2);
  opt.Step();
  EXPECT_GT(opt.last_grad_norm(), 0.0);
  EXPECT_GT(opt.last_update_norm(), 0.0);

  nn::LogTrainStep("unit", opt, 0.25, 32, 0.5, 3);
  const std::vector<std::string> lines = guard.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"model\":\"unit\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"step\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"loss\":0.25"), std::string::npos);
  // grad norm = sqrt(4 * 0.5^2) = 1
  EXPECT_NE(lines[0].find("\"grad_norm\":1"), std::string::npos);
  // 32 examples / 0.5 s
  EXPECT_NE(lines[0].find("\"examples_per_sec\":64"), std::string::npos);
  EXPECT_NE(lines[0].find("\"param_norm\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"update_ratio\":"), std::string::npos);
}

TEST(LogTrainStepTest, NoOpWhenDisabled) {
  // No file, and force metrics off so Enabled() is false.
  TrainLogger::Global().SetFile("");
  TrainLogger::Global().ResetSummary();
  const TraceMode prev = CurrentTraceMode();
  SetTraceMode(TraceMode::kOff);
  nn::Param w("w", nn::Matrix(2, 2, 1.0));
  w.grad.Fill(0.5);
  nn::Adam opt({&w}, 1e-2);
  opt.Step();
  nn::LogTrainStep("unit", opt, 0.25, 32, 0.5);
  EXPECT_FALSE(TrainLogger::Global().HasRows());
  SetTraceMode(prev);
}

}  // namespace
}  // namespace obs
}  // namespace trmma
