#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "graph/route.h"
#include "graph/ubodt.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(UbodtTest, SameNodeIsZero) {
  auto g = test::MakeGrid(4, 4, 100.0);
  ASSERT_NE(g, nullptr);
  Ubodt table(*g, 500.0);
  EXPECT_DOUBLE_EQ(table.Distance(3, 3), 0.0);
}

TEST(UbodtTest, MatchesDijkstraWithinDelta) {
  auto g = test::MakeCityNetwork(8);
  ASSERT_NE(g, nullptr);
  const double delta = 900.0;
  Ubodt table(*g, delta);
  ShortestPathEngine engine(*g);
  Rng rng(4);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    NodeId src = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    NodeId dst = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    auto ref = engine.NodeToNode(src, dst);
    const double got = table.Distance(src, dst);
    if (ref.found && ref.distance_m <= delta) {
      EXPECT_NEAR(got, ref.distance_m, 1e-4);
      ++checked;
    } else {
      EXPECT_TRUE(std::isinf(got));
    }
  }
  EXPECT_GT(checked, 20);  // the test exercised real pairs
}

TEST(UbodtTest, BeyondDeltaIsInfinity) {
  auto g = test::MakeGrid(10, 1, 100.0);
  ASSERT_NE(g, nullptr);
  Ubodt table(*g, 250.0);
  EXPECT_TRUE(std::isinf(table.Distance(0, 9)));  // 900m away
  EXPECT_FALSE(std::isinf(table.Distance(0, 2)));
}

TEST(UbodtTest, PathReconstructionIsValid) {
  auto g = test::MakeCityNetwork(12);
  ASSERT_NE(g, nullptr);
  Ubodt table(*g, 800.0);
  Rng rng(6);
  int found = 0;
  for (int trial = 0; trial < 100; ++trial) {
    NodeId src = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    NodeId dst = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    auto path = table.Path(src, dst);
    if (!path.found) continue;
    ++found;
    if (src == dst) {
      EXPECT_TRUE(path.segments.empty());
      continue;
    }
    ASSERT_FALSE(path.segments.empty());
    EXPECT_EQ(g->segment(path.segments.front()).from, src);
    EXPECT_EQ(g->segment(path.segments.back()).to, dst);
    EXPECT_TRUE(IsConnectedRoute(*g, path.segments));
    EXPECT_NEAR(RouteLength(*g, path.segments), path.distance_m, 1e-3);
  }
  EXPECT_GT(found, 10);
}

TEST(UbodtTest, SizeGrowsWithDelta) {
  auto g = test::MakeGrid(8, 8, 100.0);
  ASSERT_NE(g, nullptr);
  Ubodt small(*g, 200.0);
  Ubodt large(*g, 500.0);
  EXPECT_GT(large.size(), small.size());
  EXPECT_DOUBLE_EQ(small.delta(), 200.0);
}

}  // namespace
}  // namespace trmma
