#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/cpu_profiler.h"
#include "obs/json_parse.h"

namespace trmma {
namespace obs {
namespace {

using Clock = std::chrono::steady_clock;

// The profiler is process-wide; every test drains it back to a clean state.
class ProfilerGuard {
 public:
  ProfilerGuard() { CpuProfiler::Global().Reset(); }
  ~ProfilerGuard() { CpuProfiler::Global().Reset(); }
};

// Keeps the optimizer from collapsing the busy loops the sampler profiles.
volatile uint64_t g_sink = 0;

void BurnCpu() {
  uint64_t acc = g_sink;
  for (int i = 0; i < 50000; ++i) acc = acc * 6364136223846793005ull + 1ull;
  g_sink = acc;
}

TEST(CpuProfilerTest, SampleNowCapturesCallerStack) {
  ProfilerGuard guard;
  CpuProfiler& profiler = CpuProfiler::Global();

  const int depth = profiler.SampleNowForTest();
  if (depth == 0) {
    GTEST_SKIP() << "frame walk unavailable (sanitizer build or unsupported "
                    "architecture)";
  }
  EXPECT_GT(depth, 0);
  profiler.SampleNowForTest();
  const CpuProfilerStats stats = profiler.stats();
  EXPECT_GE(stats.samples, 2);
  EXPECT_GE(stats.dropped, 0);

  const std::string folded = profiler.FoldedStacks();
  ASSERT_FALSE(folded.empty());
  // Folded format: "frame;frame;... count\n" — every line ends in a count.
  EXPECT_NE(folded.find(' '), std::string::npos);
  EXPECT_EQ(folded.back(), '\n');
}

TEST(CpuProfilerTest, OutputsRenderFromTheSameAggregate) {
  ProfilerGuard guard;
  CpuProfiler& profiler = CpuProfiler::Global();
  if (profiler.SampleNowForTest() == 0) {
    GTEST_SKIP() << "frame walk unavailable";
  }

  const std::string html = profiler.FlamegraphHtml();
  EXPECT_NE(html.find("<html"), std::string::npos);
  EXPECT_NE(html.find("flamegraph"), std::string::npos);

  const std::string json = profiler.ProfileSectionJson(10);
  StatusOr<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  EXPECT_GE(doc.Get("samples").AsNumber(), 1.0);
  EXPECT_GE(doc.Get("dropped").AsNumber(), 0.0);
  EXPECT_GE(doc.Get("truncated").AsNumber(), 0.0);
  ASSERT_TRUE(doc.Get("frames").is_array());
  const auto& frames = doc.Get("frames").AsArray();
  ASSERT_FALSE(frames.empty());
  EXPECT_LE(frames.size(), 10u);
  double prev_self = -1.0;
  for (const JsonValue& frame : frames) {
    EXPECT_TRUE(frame.Get("symbol").is_string());
    const double self = frame.Get("self").AsNumber();
    const double total = frame.Get("total").AsNumber();
    EXPECT_LE(self, total);
    if (prev_self >= 0.0) {
      EXPECT_LE(self, prev_self) << "sorted by self desc";
    }
    prev_self = self;
  }
}

TEST(CpuProfilerTest, ResetDiscardsEverySample) {
  ProfilerGuard guard;
  CpuProfiler& profiler = CpuProfiler::Global();
  if (profiler.SampleNowForTest() == 0) {
    GTEST_SKIP() << "frame walk unavailable";
  }
  ASSERT_GE(profiler.stats().samples, 1);
  profiler.Reset();
  EXPECT_EQ(profiler.stats().samples, 0);
  EXPECT_TRUE(profiler.FoldedStacks().empty());
}

TEST(CpuProfilerTest, StartStopCollectsSamplesUnderLoad) {
  ProfilerGuard guard;
  CpuProfiler& profiler = CpuProfiler::Global();
  CpuProfilerConfig config;
  config.hz = 997;  // aggressive so the test converges quickly
  const Status started = profiler.Start(config);
  if (started.code() == StatusCode::kFailedPrecondition) {
    GTEST_SKIP() << started.ToString();
  }
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.hz(), 997);

  // A second Start while armed must refuse rather than re-arm the timer.
  EXPECT_FALSE(profiler.Start().ok());

  // ITIMER_PROF fires per CPU-second consumed, so burn cycles until the
  // sampler has seen at least one stack (bounded by wall clock).
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (profiler.stats().samples == 0 && Clock::now() < deadline) BurnCpu();

  profiler.Stop();
  profiler.Stop();  // idempotent
  EXPECT_FALSE(profiler.running());
  EXPECT_GT(profiler.stats().samples, 0);
  EXPECT_FALSE(profiler.FoldedStacks().empty());
}

TEST(CpuProfilerTest, StartFromEnvHonorsOptOut) {
  ProfilerGuard guard;
  CpuProfiler& profiler = CpuProfiler::Global();

  ::unsetenv("TRMMA_CPU_PROFILE");
  EXPECT_FALSE(profiler.StartFromEnv());
  EXPECT_FALSE(profiler.running());

  ::setenv("TRMMA_CPU_PROFILE", "0", 1);
  EXPECT_FALSE(profiler.StartFromEnv());
  ::setenv("TRMMA_CPU_PROFILE", "off", 1);
  EXPECT_FALSE(profiler.StartFromEnv());
  EXPECT_FALSE(profiler.running());
  ::unsetenv("TRMMA_CPU_PROFILE");
}

}  // namespace
}  // namespace obs
}  // namespace trmma
