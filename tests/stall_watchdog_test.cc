#include "obs/stall_watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/postmortem.h"

namespace trmma {
namespace obs {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

class WatchdogGuard {
 public:
  WatchdogGuard() {
    StallWatchdog::Global().ResetForTest();
    InflightRegistry::Global().ResetForTest();
    InflightRegistry::Global().SetEnabled(true);
  }
  ~WatchdogGuard() {
    StallWatchdog::Global().Stop();
    StallWatchdog::Global().ResetForTest();
    InflightRegistry::Global().ResetForTest();
    InflightRegistry::Global().SetEnabled(false);
  }
};

TEST(StallWatchdogTest, StuckRequestReportedExactlyOnce) {
  WatchdogGuard guard;
  InflightRegistry& reg = InflightRegistry::Global();
  // Deadline 5 ms, default stall factor 2.0: stuck once older than ~10 ms.
  const int token = reg.Register(0x77, "match", 5.0);
  ASSERT_GE(token, 0);
  reg.MarkExecuting(token);

  EXPECT_EQ(StallWatchdog::Global().ScanOnce(), 0);  // too young
  SleepMs(25);
  const std::int64_t before = StallWatchdog::Global().stuck_detected();
  EXPECT_EQ(StallWatchdog::Global().ScanOnce(), 1);
  EXPECT_EQ(StallWatchdog::Global().stuck_detected(), before + 1);
  // Still stuck on the next scan, but already reported: no re-report.
  EXPECT_EQ(StallWatchdog::Global().ScanOnce(), 0);

  // Release, then reuse the trace id: the dedup set must have been pruned
  // to the live in-flight set, so a *new* stall reports again.
  reg.Release(token);
  EXPECT_EQ(StallWatchdog::Global().ScanOnce(), 0);  // prunes bookkeeping
  const int again = reg.Register(0x77, "match", 5.0);
  ASSERT_GE(again, 0);
  reg.MarkExecuting(again);
  SleepMs(25);
  EXPECT_EQ(StallWatchdog::Global().ScanOnce(), 1);
  reg.Release(again);
}

TEST(StallWatchdogTest, SlowButWithinBudgetIsNotStuck) {
  WatchdogGuard guard;
  InflightRegistry& reg = InflightRegistry::Global();
  // 10 s deadline: a request a few dozen milliseconds old is just slow.
  const int token = reg.Register(0x88, "recover", 10000.0);
  ASSERT_GE(token, 0);
  reg.MarkExecuting(token);
  SleepMs(30);
  EXPECT_EQ(StallWatchdog::Global().ScanOnce(), 0);
  reg.Release(token);
}

TEST(StallWatchdogTest, QueuedAndUnboundedRequestsAreExempt) {
  WatchdogGuard guard;
  InflightRegistry& reg = InflightRegistry::Global();
  // Queued past its deadline: that is the engine's timeout path, not a
  // wedged worker — the watchdog must not cry wolf.
  const int queued = reg.Register(0x99, "match", 5.0);
  ASSERT_GE(queued, 0);
  // Executing with no deadline: legitimately allowed to run for minutes.
  const int unbounded = reg.Register(0x9a, "recover", 0.0);
  ASSERT_GE(unbounded, 0);
  reg.MarkExecuting(unbounded);

  SleepMs(25);
  EXPECT_EQ(StallWatchdog::Global().ScanOnce(), 0);
  reg.Release(queued);
  reg.Release(unbounded);
}

TEST(StallWatchdogTest, StartValidatesConfigAndIsIdempotent) {
  WatchdogGuard guard;
  StallWatchdog::Config bad;
  bad.poll_ms = 0.0;
  EXPECT_FALSE(StallWatchdog::Global().Start(bad).ok());
  bad.poll_ms = 10.0;
  bad.stall_factor = -1.0;
  EXPECT_FALSE(StallWatchdog::Global().Start(bad).ok());
  EXPECT_FALSE(StallWatchdog::Global().running());

  StallWatchdog::Config config;
  config.poll_ms = 10.0;
  ASSERT_TRUE(StallWatchdog::Global().Start(config).ok());
  EXPECT_TRUE(StallWatchdog::Global().running());
  // The watchdog enables the registry so there is something to scan.
  EXPECT_TRUE(InflightRegistry::Global().enabled());
  // Second start is a no-op, not an error.
  EXPECT_TRUE(StallWatchdog::Global().Start(config).ok());

  StallWatchdog::Global().Stop();
  EXPECT_FALSE(StallWatchdog::Global().running());
  StallWatchdog::Global().Stop();  // idempotent
}

TEST(StallWatchdogTest, BackgroundLoopDetectsAStall) {
  WatchdogGuard guard;
  StallWatchdog::Config config;
  config.poll_ms = 5.0;
  config.stall_factor = 2.0;
  ASSERT_TRUE(StallWatchdog::Global().Start(config).ok());

  InflightRegistry& reg = InflightRegistry::Global();
  const std::int64_t before = StallWatchdog::Global().stuck_detected();
  const int token = reg.Register(0xbb, "match", 5.0);
  ASSERT_GE(token, 0);
  reg.MarkExecuting(token);

  // 5 ms deadline × factor 2 = stuck after ~10 ms; the 5 ms poll loop must
  // notice well within a second.
  bool detected = false;
  for (int i = 0; i < 200 && !detected; ++i) {
    detected = StallWatchdog::Global().stuck_detected() > before;
    SleepMs(5);
  }
  EXPECT_TRUE(detected);
  reg.Release(token);
}

}  // namespace
}  // namespace obs
}  // namespace trmma
