#include <gtest/gtest.h>

#include <cmath>

#include "mm/hmm.h"
#include "mm/nearest.h"
#include "recovery/linear.h"
#include "recovery/seq2seq.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(NumMissingPointsTest, ExactMultiples) {
  EXPECT_EQ(NumMissingPoints(0.0, 150.0, 15.0), 9);
  EXPECT_EQ(NumMissingPoints(0.0, 15.0, 15.0), 0);
  EXPECT_EQ(NumMissingPoints(0.0, 30.0, 15.0), 1);
}

TEST(NumMissingPointsTest, RobustToFloatNoise) {
  EXPECT_EQ(NumMissingPoints(0.0, 45.0000001, 15.0), 2);
  EXPECT_EQ(NumMissingPoints(0.0, 44.9999999, 15.0), 2);
}

TEST(NumMissingPointsTest, NeverNegative) {
  EXPECT_EQ(NumMissingPoints(10.0, 10.0, 15.0), 0);
  EXPECT_EQ(NumMissingPoints(10.0, 5.0, 15.0), 0);
}

TEST(WalkAlongRouteTest, StaysOnSegment) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  std::vector<SegmentId> east;
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    if (g->segment(i).to == g->segment(i).from + 1) east.push_back(i);
  }
  Route route(east.begin(), east.end());
  int idx = 0;
  MatchedPoint a = WalkAlongRoute(*g, route, idx, 0.2, 30.0);
  EXPECT_EQ(a.segment, route[0]);
  EXPECT_NEAR(a.ratio, 0.5, 0.01);
  EXPECT_EQ(idx, 0);
}

TEST(WalkAlongRouteTest, CrossesSegments) {
  auto g = test::MakeGrid(4, 1, 100.0);
  ASSERT_NE(g, nullptr);
  std::vector<SegmentId> east;
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    if (g->segment(i).to == g->segment(i).from + 1) east.push_back(i);
  }
  Route route(east.begin(), east.end());
  int idx = 0;
  MatchedPoint a = WalkAlongRoute(*g, route, idx, 0.5, 120.0);
  EXPECT_EQ(a.segment, route[1]);
  EXPECT_NEAR(a.ratio, 0.7, 0.01);
  EXPECT_EQ(idx, 1);
}

TEST(WalkAlongRouteTest, ClampsAtRouteEnd) {
  auto g = test::MakeGrid(3, 1, 100.0);
  ASSERT_NE(g, nullptr);
  std::vector<SegmentId> east;
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    if (g->segment(i).to == g->segment(i).from + 1) east.push_back(i);
  }
  Route route(east.begin(), east.end());
  int idx = 0;
  MatchedPoint a = WalkAlongRoute(*g, route, idx, 0.0, 1e6);
  EXPECT_EQ(a.segment, route.back());
  EXPECT_LT(a.ratio, 1.0);
  EXPECT_GT(a.ratio, 0.99);
}

class RecoveryFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::MakeTinyDataset("XA", 100));
    index_ = new SegmentRTree(*dataset_->network);
    ubodt_ = new Ubodt(*dataset_->network, 3000.0);
    stats_ = new TransitionStats(*dataset_->network);
    for (int idx : dataset_->train_idx) {
      stats_->AddRoute(dataset_->samples[idx].route);
    }
    planner_ = new DaRoutePlanner(*dataset_->network, *stats_);
    engine_ = new ShortestPathEngine(*dataset_->network);
    fmm_ = new FmmMatcher(*dataset_->network, *index_, *ubodt_);
  }
  static void TearDownTestSuite() {
    delete fmm_;
    delete engine_;
    delete planner_;
    delete stats_;
    delete ubodt_;
    delete index_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static SegmentRTree* index_;
  static Ubodt* ubodt_;
  static TransitionStats* stats_;
  static DaRoutePlanner* planner_;
  static ShortestPathEngine* engine_;
  static FmmMatcher* fmm_;
};

Dataset* RecoveryFixture::dataset_ = nullptr;
SegmentRTree* RecoveryFixture::index_ = nullptr;
Ubodt* RecoveryFixture::ubodt_ = nullptr;
TransitionStats* RecoveryFixture::stats_ = nullptr;
DaRoutePlanner* RecoveryFixture::planner_ = nullptr;
ShortestPathEngine* RecoveryFixture::engine_ = nullptr;
FmmMatcher* RecoveryFixture::fmm_ = nullptr;

TEST_F(RecoveryFixture, LinearRecoveryCountMatchesTruth) {
  LinearRecovery linear(*dataset_->network, fmm_, planner_, engine_,
                        "Linear");
  for (int t = 0; t < 15; ++t) {
    const auto& sample = dataset_->samples[dataset_->test_idx[t]];
    auto rec = linear.Recover(sample.sparse, dataset_->epsilon_s);
    EXPECT_EQ(rec.size(), sample.truth.size());
  }
}

TEST_F(RecoveryFixture, LinearRecoveryTimestampsOnGrid) {
  LinearRecovery linear(*dataset_->network, fmm_, planner_, engine_,
                        "Linear");
  const auto& sample = dataset_->samples[dataset_->test_idx[0]];
  auto rec = linear.Recover(sample.sparse, dataset_->epsilon_s);
  for (size_t i = 1; i < rec.size(); ++i) {
    EXPECT_NEAR(rec[i].t - rec[i - 1].t, dataset_->epsilon_s, 1e-6);
  }
}

TEST_F(RecoveryFixture, LinearRecoveryReasonableAccuracy) {
  LinearRecovery linear(*dataset_->network, fmm_, planner_, engine_,
                        "Linear");
  double acc = 0;
  int count = 0;
  for (int t = 0; t < 15; ++t) {
    const auto& sample = dataset_->samples[dataset_->test_idx[t]];
    auto rec = linear.Recover(sample.sparse, dataset_->epsilon_s);
    int64_t ok = 0;
    const size_t n = std::min(rec.size(), sample.truth.size());
    for (size_t i = 0; i < n; ++i) {
      ok += rec[i].segment == sample.truth[i].segment;
    }
    acc += static_cast<double>(ok) / sample.truth.size();
    ++count;
  }
  EXPECT_GT(acc / count, 0.5);
}

TEST_F(RecoveryFixture, LinearRatiosInRange) {
  LinearRecovery linear(*dataset_->network, fmm_, planner_, engine_,
                        "Linear");
  const auto& sample = dataset_->samples[dataset_->test_idx[1]];
  auto rec = linear.Recover(sample.sparse, dataset_->epsilon_s);
  for (const MatchedPoint& a : rec) {
    EXPECT_GE(a.ratio, 0.0);
    EXPECT_LT(a.ratio, 1.0);
    EXPECT_GE(a.segment, 0);
    EXPECT_LT(a.segment, dataset_->network->num_segments());
  }
}

TEST_F(RecoveryFixture, EmptyInputGivesEmptyOutput) {
  LinearRecovery linear(*dataset_->network, fmm_, planner_, engine_,
                        "Linear");
  Trajectory empty;
  EXPECT_TRUE(linear.Recover(empty, 15.0).empty());
}

TEST_F(RecoveryFixture, Seq2SeqTrainsAndRecovers) {
  Seq2SeqConfig config;
  config.dh = 16;
  Seq2SeqRecovery model(*dataset_->network, *index_, config, "MTrajRec");
  Rng rng(1);
  const double first = model.TrainEpoch(*dataset_, rng);
  double last = first;
  for (int e = 0; e < 3; ++e) last = model.TrainEpoch(*dataset_, rng);
  EXPECT_LT(last, first);
  const auto& sample = dataset_->samples[dataset_->test_idx[0]];
  auto rec = model.Recover(sample.sparse, dataset_->epsilon_s);
  EXPECT_EQ(rec.size(), sample.truth.size());
  for (const MatchedPoint& a : rec) {
    EXPECT_GE(a.segment, 0);
    EXPECT_LT(a.segment, dataset_->network->num_segments());
    EXPECT_GE(a.ratio, 0.0);
    EXPECT_LT(a.ratio, 1.0);
  }
}

TEST_F(RecoveryFixture, Seq2SeqTransformerVariantRuns) {
  Seq2SeqConfig config;
  config.dh = 16;
  config.transformer_encoder = true;
  Seq2SeqRecovery model(*dataset_->network, *index_, config, "TrajCL+Dec");
  Rng rng(2);
  EXPECT_GT(model.TrainEpoch(*dataset_, rng), 0.0);
  auto rec = model.Recover(dataset_->samples[dataset_->test_idx[0]].sparse,
                           dataset_->epsilon_s);
  EXPECT_FALSE(rec.empty());
}

TEST_F(RecoveryFixture, Seq2SeqConstraintMaskRestrictsJumps) {
  Seq2SeqConfig config;
  config.dh = 16;
  config.constraint_hops = 1;
  Seq2SeqRecovery model(*dataset_->network, *index_, config, "MTrajRec");
  Rng rng(3);
  model.TrainEpoch(*dataset_, rng);
  const auto& sample = dataset_->samples[dataset_->test_idx[0]];
  auto rec = model.Recover(sample.sparse, dataset_->epsilon_s);
  // Consecutive non-observation predictions must be 1-hop reachable. We
  // only check the overall structure: each segment id is valid.
  for (const MatchedPoint& a : rec) {
    EXPECT_GE(a.segment, 0);
  }
}

}  // namespace
}  // namespace trmma
