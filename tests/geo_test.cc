#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geo/geometry.h"
#include "geo/latlng.h"

namespace trmma {
namespace {

// ------------------------------------------------------------- Haversine

TEST(HaversineTest, ZeroForSamePoint) {
  LatLng p{31.2, 121.5};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  const double d = HaversineMeters({0.0, 0.0}, {1.0, 0.0});
  EXPECT_NEAR(d, 111195.0, 200.0);
}

TEST(HaversineTest, LongitudeShrinksWithLatitude) {
  const double at_equator = HaversineMeters({0.0, 0.0}, {0.0, 1.0});
  const double at_60 = HaversineMeters({60.0, 0.0}, {60.0, 1.0});
  EXPECT_NEAR(at_60 / at_equator, 0.5, 0.01);
}

TEST(HaversineTest, Symmetric) {
  LatLng a{30.5, 104.0};
  LatLng b{30.7, 104.3};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

// ------------------------------------------------------------ Projection

TEST(LocalProjectionTest, OriginMapsToZero) {
  LocalProjection proj(LatLng{31.0, 121.0});
  Vec2 v = proj.ToMeters({31.0, 121.0});
  EXPECT_NEAR(v.x, 0.0, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
}

TEST(LocalProjectionTest, RoundTrip) {
  LocalProjection proj(LatLng{31.0, 121.0});
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    LatLng p{31.0 + rng.Uniform(-0.2, 0.2), 121.0 + rng.Uniform(-0.2, 0.2)};
    LatLng back = proj.ToLatLng(proj.ToMeters(p));
    EXPECT_NEAR(back.lat, p.lat, 1e-9);
    EXPECT_NEAR(back.lng, p.lng, 1e-9);
  }
}

TEST(LocalProjectionTest, DistancesMatchHaversineLocally) {
  LocalProjection proj(LatLng{31.0, 121.0});
  LatLng a{31.01, 121.02};
  LatLng b{31.03, 121.05};
  const double planar = (proj.ToMeters(a) - proj.ToMeters(b)).Norm();
  const double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.001);
}

TEST(LocalProjectionTest, NorthIsPositiveY) {
  LocalProjection proj(LatLng{31.0, 121.0});
  EXPECT_GT(proj.ToMeters({31.1, 121.0}).y, 0.0);
  EXPECT_GT(proj.ToMeters({31.0, 121.1}).x, 0.0);
}

// ------------------------------------------------------------------ Vec2

TEST(Vec2Test, Arithmetic) {
  Vec2 a{1.0, 2.0};
  Vec2 b{3.0, -1.0};
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a - b).y, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).x, 2.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}.Norm()), 5.0);
}

// ------------------------------------------------------------------ BBox

TEST(BBoxTest, UnionCoversBoth) {
  BBox a{0, 0, 1, 1};
  BBox b{2, -1, 3, 0.5};
  BBox u = BBox::Union(a, b);
  EXPECT_DOUBLE_EQ(u.min_x, 0);
  EXPECT_DOUBLE_EQ(u.min_y, -1);
  EXPECT_DOUBLE_EQ(u.max_x, 3);
  EXPECT_DOUBLE_EQ(u.max_y, 1);
}

TEST(BBoxTest, OfSegmentOrdersCoordinates) {
  BBox b = BBox::OfSegment({5, 1}, {2, 4});
  EXPECT_DOUBLE_EQ(b.min_x, 2);
  EXPECT_DOUBLE_EQ(b.max_x, 5);
  EXPECT_DOUBLE_EQ(b.min_y, 1);
  EXPECT_DOUBLE_EQ(b.max_y, 4);
}

TEST(BBoxTest, ContainsAndDistance) {
  BBox b{0, 0, 10, 10};
  EXPECT_TRUE(b.Contains({5, 5}));
  EXPECT_TRUE(b.Contains({0, 10}));
  EXPECT_FALSE(b.Contains({-0.1, 5}));
  EXPECT_DOUBLE_EQ(b.DistanceTo({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo({13, 14}), 5.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo({-3, 5}), 3.0);
}

TEST(BBoxTest, Expanded) {
  BBox b = BBox{1, 1, 2, 2}.Expanded(0.5);
  EXPECT_DOUBLE_EQ(b.min_x, 0.5);
  EXPECT_DOUBLE_EQ(b.max_y, 2.5);
}

// ---------------------------------------------------- Segment projection

TEST(ProjectOntoSegmentTest, PerpendicularFoot) {
  auto p = ProjectOntoSegment({5, 3}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.ratio, 0.5);
  EXPECT_DOUBLE_EQ(p.distance, 3.0);
  EXPECT_DOUBLE_EQ(p.point.x, 5.0);
  EXPECT_DOUBLE_EQ(p.point.y, 0.0);
}

TEST(ProjectOntoSegmentTest, ClampsBeforeStart) {
  auto p = ProjectOntoSegment({-4, 3}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.ratio, 0.0);
  EXPECT_DOUBLE_EQ(p.distance, 5.0);
}

TEST(ProjectOntoSegmentTest, ClampsAfterEnd) {
  auto p = ProjectOntoSegment({13, 4}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(p.ratio, 1.0);
  EXPECT_DOUBLE_EQ(p.distance, 5.0);
}

TEST(ProjectOntoSegmentTest, DegenerateSegment) {
  auto p = ProjectOntoSegment({3, 4}, {0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(p.ratio, 0.0);
  EXPECT_DOUBLE_EQ(p.distance, 5.0);
}

/// Property sweep: the projection is the closest point of the segment.
class ProjectionPropertyTest : public testing::TestWithParam<int> {};

TEST_P(ProjectionPropertyTest, ProjectionIsClosestPoint) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 a{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    Vec2 b{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    Vec2 q{rng.Uniform(-150, 150), rng.Uniform(-150, 150)};
    auto proj = ProjectOntoSegment(q, a, b);
    EXPECT_GE(proj.ratio, 0.0);
    EXPECT_LE(proj.ratio, 1.0);
    // Sample the segment densely: nothing is closer than the projection.
    for (int s = 0; s <= 20; ++s) {
      Vec2 cand = InterpolateOnSegment(a, b, s / 20.0);
      EXPECT_LE(proj.distance, (q - cand).Norm() + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionPropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

TEST(InterpolateTest, Endpoints) {
  Vec2 a{1, 1};
  Vec2 b{5, 9};
  EXPECT_DOUBLE_EQ(InterpolateOnSegment(a, b, 0.0).x, 1.0);
  EXPECT_DOUBLE_EQ(InterpolateOnSegment(a, b, 1.0).y, 9.0);
  EXPECT_DOUBLE_EQ(InterpolateOnSegment(a, b, 0.5).x, 3.0);
}

// ------------------------------------------------------ CosineSimilarity

TEST(CosineTest, ParallelIsOne) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {5, 0}), 1.0, 1e-12);
}

TEST(CosineTest, AntiParallelIsMinusOne) {
  EXPECT_NEAR(CosineSimilarity({1, 1}, {-2, -2}), -1.0, 1e-12);
}

TEST(CosineTest, OrthogonalIsZero) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 3}), 0.0, 1e-12);
}

TEST(CosineTest, ZeroVectorGivesZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 2}), 0.0);
}

}  // namespace
}  // namespace trmma
