#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

class ExperimentFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::MakeTinyDataset("XA", 90));
    StackConfig config;
    config.mma.d0 = 16;
    config.mma.d1 = 32;
    config.mma.d2 = 16;
    config.mma.d3 = 32;
    config.mma.trans_ffn = 32;
    config.trmma.dh = 16;
    config.trmma.trans_ffn = 32;
    config.seq2seq.dh = 16;
    config.deepmm.hidden_dim = 16;
    config.node2vec.epochs = 1;
    config.node2vec.walks_per_node = 2;
    config.ubodt_delta_m = 2500.0;
    stack_ = new ExperimentStack(BuildStack(*dataset_, config));
  }
  static void TearDownTestSuite() {
    delete stack_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static ExperimentStack* stack_;
};

Dataset* ExperimentFixture::dataset_ = nullptr;
ExperimentStack* ExperimentFixture::stack_ = nullptr;

TEST_F(ExperimentFixture, StackHasAllComponents) {
  EXPECT_NE(stack_->index, nullptr);
  EXPECT_NE(stack_->ubodt, nullptr);
  EXPECT_NE(stack_->planner, nullptr);
  EXPECT_NE(stack_->nearest, nullptr);
  EXPECT_NE(stack_->hmm, nullptr);
  EXPECT_NE(stack_->fmm, nullptr);
  EXPECT_NE(stack_->lhmm, nullptr);
  EXPECT_NE(stack_->mma, nullptr);
  EXPECT_NE(stack_->deepmm, nullptr);
  EXPECT_NE(stack_->trmma, nullptr);
  EXPECT_NE(stack_->linear, nullptr);
  EXPECT_NE(stack_->mtrajrec, nullptr);
  EXPECT_NE(stack_->trajformer, nullptr);
  EXPECT_EQ(stack_->node2vec_table.rows(),
            dataset_->network->num_segments());
}

TEST_F(ExperimentFixture, MapMatchingEvalInRange) {
  auto ev = EvaluateMapMatching(*stack_, *stack_->nearest, 15);
  EXPECT_GT(ev.metrics.f1, 0.2);
  EXPECT_LE(ev.metrics.f1, 1.0);
  EXPECT_GT(ev.seconds_per_1000, 0.0);
  EXPECT_GE(ev.metrics.jaccard, 0.0);
  EXPECT_LE(ev.metrics.jaccard, ev.metrics.f1 + 1e-9);
}

TEST_F(ExperimentFixture, RecoveryEvalInRange) {
  auto ev = EvaluateRecovery(*stack_, *stack_->linear, 15);
  EXPECT_GT(ev.accuracy, 0.1);
  EXPECT_LE(ev.accuracy, 1.0);
  EXPECT_GT(ev.mae_m, 0.0);
  EXPECT_GE(ev.rmse_m, ev.mae_m);
  EXPECT_GT(ev.seconds_per_1000, 0.0);
}

TEST_F(ExperimentFixture, TrainHelpersReportTimings) {
  auto mma_stats = TrainMma(*stack_, 1);
  EXPECT_GT(mma_stats.seconds_per_epoch, 0.0);
  EXPECT_GT(mma_stats.final_loss, 0.0);
  auto lhmm_stats = TrainLhmm(*stack_, 1);
  EXPECT_GE(lhmm_stats.seconds_per_epoch, 0.0);
  auto trmma_stats = TrainTrmma(*stack_, 1);
  EXPECT_GT(trmma_stats.final_loss, 0.0);
}

TEST_F(ExperimentFixture, TrainFractionSubsamples) {
  // Training on 10% must be faster than on 100%.
  auto frac = TrainMma(*stack_, 1, 0.1);
  auto full = TrainMma(*stack_, 1, 1.0);
  EXPECT_LT(frac.seconds_per_epoch, full.seconds_per_epoch);
}

TEST(ResparsifyTest, ChangesGammaAndDensity) {
  Dataset ds = test::MakeTinyDataset("XA", 20);
  size_t sparse_points_before = 0;
  for (const auto& s : ds.samples) sparse_points_before += s.sparse.size();
  ResparsifyDataset(ds, 0.5, 99);
  EXPECT_DOUBLE_EQ(ds.gamma, 0.5);
  size_t sparse_points_after = 0;
  for (const auto& s : ds.samples) {
    sparse_points_after += s.sparse.size();
    EXPECT_EQ(s.sparse_indices.front(), 0);
    EXPECT_EQ(s.sparse_indices.back(), s.raw.size() - 1);
  }
  EXPECT_GT(sparse_points_after, sparse_points_before);
}

TEST(PrintHelpersTest, DoNotCrash) {
  PrintHeader("method", {"a", "b"});
  PrintRow("x", {1.2345, 6.789});
}

}  // namespace
}  // namespace trmma
