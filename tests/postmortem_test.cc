#include "obs/postmortem.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "obs/stack_walk.h"
#include "obs/trace.h"

namespace trmma {
namespace obs {
namespace {

class RegistryGuard {
 public:
  RegistryGuard() {
    InflightRegistry::Global().ResetForTest();
    InflightRegistry::Global().SetEnabled(true);
  }
  ~RegistryGuard() {
    InflightRegistry::Global().ResetForTest();
    InflightRegistry::Global().SetEnabled(false);
  }
};

TEST(InflightRegistryTest, DisabledRegistrationIsNotTracked) {
  InflightRegistry::Global().ResetForTest();
  InflightRegistry::Global().SetEnabled(false);
  EXPECT_EQ(InflightRegistry::Global().Register(1, "match", 100.0), -1);
  // -1 tokens are inert everywhere downstream.
  InflightRegistry::Global().MarkExecuting(-1);
  InflightRegistry::Global().Release(-1);
}

TEST(InflightRegistryTest, LifecycleQueuedExecutingReleased) {
  RegistryGuard guard;
  InflightRegistry& reg = InflightRegistry::Global();
  const int token = reg.Register(0xabcdef, "match", 250.0);
  ASSERT_GE(token, 0);

  InflightRequest reqs[InflightRegistry::kMaxSlots];
  ASSERT_EQ(reg.Snapshot(reqs, InflightRegistry::kMaxSlots), 1);
  EXPECT_EQ(reqs[0].trace_id, 0xabcdefu);
  EXPECT_STREQ(reqs[0].kind, "match");
  EXPECT_EQ(reqs[0].state, 1);  // queued
  EXPECT_EQ(reqs[0].tid, 0);    // no worker yet
  EXPECT_DOUBLE_EQ(reqs[0].deadline_ms, 250.0);

  reg.MarkExecuting(token);
  ASSERT_EQ(reg.Snapshot(reqs, InflightRegistry::kMaxSlots), 1);
  EXPECT_EQ(reqs[0].state, 2);  // executing
  EXPECT_EQ(reqs[0].tid, CurrentThreadId());

  reg.Release(token);
  EXPECT_EQ(reg.Snapshot(reqs, InflightRegistry::kMaxSlots), 0);
}

TEST(InflightRegistryTest, FullRegistryDropsGracefully) {
  RegistryGuard guard;
  InflightRegistry& reg = InflightRegistry::Global();
  std::vector<int> tokens;
  for (int i = 0; i < InflightRegistry::kMaxSlots; ++i) {
    const int token = reg.Register(static_cast<uint64_t>(i + 1), "match", 0.0);
    ASSERT_GE(token, 0) << "slot " << i;
    tokens.push_back(token);
  }
  // 257th request: not tracked, never an error.
  EXPECT_EQ(reg.Register(999, "recover", 0.0), -1);
  for (const int token : tokens) reg.Release(token);
  InflightRequest reqs[InflightRegistry::kMaxSlots];
  EXPECT_EQ(reg.Snapshot(reqs, InflightRegistry::kMaxSlots), 0);
}

TEST(InflightRegistryTest, JsonListsInflightRequests) {
  RegistryGuard guard;
  InflightRegistry& reg = InflightRegistry::Global();
  const int token = reg.Register(0x10, "recover", 50.0);
  ASSERT_GE(token, 0);
  const StatusOr<JsonValue> doc = ParseJson(reg.Json());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc.value().Get("enabled").AsBool());
  const JsonValue& inflight = doc.value().Get("inflight");
  ASSERT_TRUE(inflight.is_array());
  ASSERT_EQ(inflight.AsArray().size(), 1u);
  EXPECT_EQ(inflight.AsArray()[0].Get("trace_id").AsString(),
            TraceIdHex(0x10));
  EXPECT_EQ(inflight.AsArray()[0].Get("state").AsString(), "queued");
  reg.Release(token);
}

TEST(PostmortemTest, LiveDumpMatchesSchema) {
  RegistryGuard guard;
  ScopedThreadRegistration reg("test.postmortem");
  const int token =
      InflightRegistry::Global().Register(0x42, "match", 125.0);
  ASSERT_GE(token, 0);
  InflightRegistry::Global().MarkExecuting(token);

  const std::string json = BuildPostmortemJson(PostmortemContext{});
  const StatusOr<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();

  EXPECT_EQ(doc.Get("schema").AsString(), "trmma.postmortem.v1");
  EXPECT_EQ(doc.Get("signal").Get("number").AsNumber(), 0.0);
  EXPECT_EQ(doc.Get("signal").Get("name").AsString(), "NONE");
  EXPECT_TRUE(doc.Get("signal").Get("fault_addr").is_null());
  EXPECT_TRUE(doc.Get("reason").is_null());
  EXPECT_GT(doc.Get("pid").AsNumber(), 0.0);

  const JsonValue& threads = doc.Get("threads");
  ASSERT_TRUE(threads.is_array());
  ASSERT_FALSE(threads.AsArray().empty());
  bool found_self = false;
  for (const JsonValue& thread : threads.AsArray()) {
    found_self =
        found_self || thread.Get("name").AsString() == "test.postmortem";
  }
  EXPECT_TRUE(found_self);

  const JsonValue& inflight = doc.Get("inflight_requests");
  ASSERT_TRUE(inflight.is_array());
  ASSERT_EQ(inflight.AsArray().size(), 1u);
  EXPECT_EQ(inflight.AsArray()[0].Get("trace_id").AsString(),
            TraceIdHex(0x42));
  EXPECT_EQ(inflight.AsArray()[0].Get("state").AsString(), "executing");

  EXPECT_TRUE(doc.Get("memory").is_object());
  // Live dumps hold no locks, so the try-lock sections must be present.
  EXPECT_TRUE(doc.Get("metrics").is_object());
  EXPECT_TRUE(doc.Get("lock_order").is_object());
  EXPECT_TRUE(doc.Get("spans").is_array() || doc.Get("spans").is_null());

  InflightRegistry::Global().Release(token);
}

TEST(PostmortemTest, ContextReasonAndSignalAreReported) {
  PostmortemContext ctx;
  ctx.signo = 6;  // SIGABRT
  ctx.reason = "watchdog: request stuck";
  const StatusOr<JsonValue> parsed = ParseJson(BuildPostmortemJson(ctx));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Get("signal").Get("name").AsString(), "SIGABRT");
  EXPECT_EQ(parsed.value().Get("reason").AsString(),
            "watchdog: request stuck");
  // No pre-captured stacks were supplied, so the builder captured live ones.
  EXPECT_TRUE(parsed.value().Get("threads").is_array());
}

TEST(PostmortemTest, InstallValidatesAndTargetsTheDirectory) {
  EXPECT_FALSE(InstallCrashHandler("").ok());

  char dir_template[] = "/tmp/trmma_postmortem_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  ASSERT_TRUE(InstallCrashHandler(dir).ok());
  EXPECT_TRUE(CrashHandlerInstalled());
  EXPECT_EQ(PostmortemDir(), dir);
  EXPECT_EQ(PostmortemPath().find(dir + "/postmortem."), 0u);
  // The registry is live now: crash reports need the in-flight view.
  EXPECT_TRUE(InflightRegistry::Global().enabled());

  // Re-install just retargets the path.
  char dir2_template[] = "/tmp/trmma_postmortem_XXXXXX";
  ASSERT_NE(::mkdtemp(dir2_template), nullptr);
  const std::string dir2 = dir2_template;
  ASSERT_TRUE(InstallCrashHandler(dir2).ok());
  EXPECT_EQ(PostmortemDir(), dir2);
  ::rmdir(dir.c_str());
  ::rmdir(dir2_template);
}

}  // namespace
}  // namespace obs
}  // namespace trmma
