#include <gtest/gtest.h>

#include "graph/road_network.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

TEST(RoadNetworkTest, BuildsSmallNetwork) {
  auto g = test::MakeGrid(3, 2);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->num_nodes(), 6);
  // 3x2 grid: horizontal 2*2, vertical 3*1, both directions.
  EXPECT_EQ(g->num_segments(), 2 * (2 * 2 + 3 * 1));
  EXPECT_TRUE(g->finalized());
}

TEST(RoadNetworkTest, SegmentLengthMatchesSpacing) {
  auto g = test::MakeGrid(3, 3, 150.0);
  ASSERT_NE(g, nullptr);
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    EXPECT_NEAR(g->segment(i).length_m, 150.0, 0.5);
  }
}

TEST(RoadNetworkTest, AdjacencyIsConsistent) {
  auto g = test::MakeGrid(4, 4);
  ASSERT_NE(g, nullptr);
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    const RoadSegment& seg = g->segment(i);
    const auto& outs = g->OutSegments(seg.from);
    EXPECT_NE(std::find(outs.begin(), outs.end(), i), outs.end());
    const auto& ins = g->InSegments(seg.to);
    EXPECT_NE(std::find(ins.begin(), ins.end(), i), ins.end());
  }
}

TEST(RoadNetworkTest, NextSegmentsLeaveSegmentExit) {
  auto g = test::MakeGrid(3, 3);
  ASSERT_NE(g, nullptr);
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    for (SegmentId n : g->NextSegments(i)) {
      EXPECT_EQ(g->segment(n).from, g->segment(i).to);
    }
  }
}

TEST(RoadNetworkTest, InteriorNodeDegreeIsFour) {
  auto g = test::MakeGrid(5, 5);
  ASSERT_NE(g, nullptr);
  // Node (2,2) is interior.
  EXPECT_EQ(g->OutSegments(2 * 5 + 2).size(), 4u);
  EXPECT_EQ(g->MaxOutDegree(), 4);
}

TEST(RoadNetworkTest, AddSegmentValidation) {
  RoadNetwork g;
  NodeId a = g.AddNode({31.0, 121.0});
  NodeId b = g.AddNode({31.001, 121.0});
  EXPECT_FALSE(g.AddSegment(a, a, 10.0).ok());       // self-loop
  EXPECT_FALSE(g.AddSegment(a, 99, 10.0).ok());      // bad endpoint
  EXPECT_FALSE(g.AddSegment(a, b, -1.0).ok());       // bad speed
  EXPECT_TRUE(g.AddSegment(a, b, 10.0).ok());
}

TEST(RoadNetworkTest, FinalizeRejectsEmptyAndDouble) {
  RoadNetwork empty;
  EXPECT_FALSE(empty.Finalize().ok());

  RoadNetwork g;
  NodeId a = g.AddNode({31.0, 121.0});
  NodeId b = g.AddNode({31.001, 121.0});
  ASSERT_TRUE(g.AddSegment(a, b, 10.0).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_FALSE(g.Finalize().ok());
}

TEST(RoadNetworkTest, FinalizeRejectsZeroLengthSegment) {
  RoadNetwork g;
  NodeId a = g.AddNode({31.0, 121.0});
  NodeId b = g.AddNode({31.0, 121.0});  // identical position
  ASSERT_TRUE(g.AddSegment(a, b, 10.0).ok());
  EXPECT_FALSE(g.Finalize().ok());
}

TEST(RoadNetworkTest, PointOnSegmentInterpolates) {
  auto g = test::MakeGrid(2, 1, 100.0);
  ASSERT_NE(g, nullptr);
  // Find the eastbound segment from node 0 to node 1.
  SegmentId east = kInvalidSegment;
  for (SegmentId i = 0; i < g->num_segments(); ++i) {
    if (g->segment(i).from == 0 && g->segment(i).to == 1) east = i;
  }
  ASSERT_NE(east, kInvalidSegment);
  const Vec2 start = g->SegmentStartXy(east);
  const Vec2 mid = g->PointOnSegment(east, 0.5);
  EXPECT_NEAR((mid - start).Norm(), 50.0, 0.5);
}

TEST(RoadNetworkTest, LatLngOnSegmentRoundTrips) {
  auto g = test::MakeGrid(2, 2, 100.0);
  ASSERT_NE(g, nullptr);
  const LatLng p = g->LatLngOnSegment(0, 0.25);
  const Vec2 xy = g->projection().ToMeters(p);
  const SegmentProjection proj = g->ProjectOnto(0, xy);
  EXPECT_NEAR(proj.ratio, 0.25, 1e-6);
  EXPECT_NEAR(proj.distance, 0.0, 1e-6);
}

TEST(RoadNetworkTest, MoveConstructible) {
  auto g = test::MakeGrid(2, 2);
  ASSERT_NE(g, nullptr);
  RoadNetwork moved = std::move(*g);
  EXPECT_EQ(moved.num_nodes(), 4);
  EXPECT_TRUE(moved.finalized());
}

}  // namespace
}  // namespace trmma
