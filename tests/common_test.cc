#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/csv.h"
#include "common/fault_points.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace trmma {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "hello");
}

Status Helper(bool fail) {
  TRMMA_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(21);
  std::vector<double> w = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(w), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(25);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += v[i] != i;
  EXPECT_GT(moved, 50);
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, SplitLineBasic) {
  auto f = csv::SplitLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvTest, SplitLineEmptyFields) {
  auto f = csv::SplitLine(",x,,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[3], "");
}

TEST(CsvTest, SplitLineStripsCarriageReturn) {
  auto f = csv::SplitLine("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(CsvTest, RoundTrip) {
  const std::string path = testing::TempDir() + "/trmma_csv_test.csv";
  std::vector<std::vector<std::string>> rows = {
      {"h1", "h2"}, {"1", "2"}, {"x", ""}};
  ASSERT_TRUE(csv::WriteFile(path, rows).ok());
  auto read = csv::ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto read = csv::ReadFile("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, WriteToBadPathFails) {
  EXPECT_FALSE(csv::WriteFile("/nonexistent/dir/f.csv", {{"a"}}).ok());
}

TEST(CsvTest, ReadTableSurvivesDamagedFile) {
  // Ragged rows, trailing delimiters, CRLF endings and blank lines must all
  // come back as data, with the original line numbers preserved.
  const std::string path = testing::TempDir() + "/trmma_csv_damaged.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b,c\r\n"
        << "\r\n"
        << "short\n"
        << "x,y,\n"
        << "\n"
        << "p,q,r,s,extra\n";
  }
  auto table_or = csv::ReadTable(path);
  ASSERT_TRUE(table_or.ok());
  const csv::Table& table = table_or.value();
  ASSERT_EQ(table.rows.size(), 4u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"short"}));
  EXPECT_EQ(table.rows[2], (std::vector<std::string>{"x", "y", ""}));
  EXPECT_EQ(table.rows[3].size(), 5u);
  EXPECT_EQ(table.lines, (std::vector<int>{1, 3, 4, 6}));
  EXPECT_EQ(table.Context(1), path + ":3");
  std::remove(path.c_str());
}

TEST(CsvTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(csv::ParseDouble("").ok());
  EXPECT_FALSE(csv::ParseDouble("12abc").ok());
  EXPECT_FALSE(csv::ParseDouble("##").ok());
  EXPECT_FALSE(csv::ParseDouble(" 1").ok());
  ASSERT_TRUE(csv::ParseDouble("-3.5e2").ok());
  EXPECT_DOUBLE_EQ(csv::ParseDouble("-3.5e2").value(), -350.0);
  ASSERT_TRUE(csv::ParseDouble("nan").ok());
  EXPECT_TRUE(std::isnan(csv::ParseDouble("nan").value()));
}

TEST(CsvTest, ParseIntRejectsGarbageAndOverflow) {
  EXPECT_FALSE(csv::ParseInt("").ok());
  EXPECT_FALSE(csv::ParseInt("7.5").ok());
  EXPECT_FALSE(csv::ParseInt("12x").ok());
  EXPECT_FALSE(csv::ParseInt("99999999999999999999").ok());
  ASSERT_TRUE(csv::ParseInt("-42").ok());
  EXPECT_EQ(csv::ParseInt("-42").value(), -42);
}

TEST(CsvTest, ReadHonorsFaultPoint) {
  const std::string path = testing::TempDir() + "/trmma_csv_fault.csv";
  ASSERT_TRUE(csv::WriteFile(path, {{"a"}}).ok());
  static bool armed = false;
  armed = true;
  InstallFaultHandler(
      [](void*, const char* site) {
        return armed && std::string(site) == "csv.read";
      },
      nullptr);
  auto read = csv::ReadFile(path);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  ClearFaultHandler();
  EXPECT_TRUE(csv::ReadFile(path).ok());
  std::remove(path.c_str());
}

// -------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  EXPECT_GE(w.ElapsedMillis(), w.ElapsedSeconds());
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + 1;
  const double before = w.ElapsedSeconds();
  w.Restart();
  EXPECT_LE(w.ElapsedSeconds(), before + 1.0);
}

TEST(StopwatchTest, LapMillisMeasuresSinceLastLap) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 200000; ++i) x = x + 1;
  const double lap1 = w.LapMillis();
  EXPECT_GE(lap1, 0.0);
  // The lap resets its own origin: an immediate second lap is (much)
  // shorter than total elapsed time.
  for (int i = 0; i < 200000; ++i) x = x + 1;
  const double lap2 = w.LapMillis();
  EXPECT_GE(lap2, 0.0);
  EXPECT_LE(lap2, w.ElapsedMillis());
}

TEST(StopwatchTest, LapsSumToElapsed) {
  Stopwatch w;
  volatile double x = 0;
  double lap_sum = 0.0;
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 100000; ++i) x = x + 1;
    lap_sum += w.LapMillis();
  }
  const double total = w.ElapsedMillis();
  // Laps partition [start, last lap], so their sum can't exceed the total.
  EXPECT_LE(lap_sum, total + 1e-6);
  EXPECT_GE(total, lap_sum * 0.5);
}

TEST(StopwatchTest, RestartResetsLapOrigin) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 500000; ++i) x = x + 1;
  w.Restart();
  const double lap = w.LapMillis();
  EXPECT_LE(lap, w.ElapsedMillis() + 1.0);
}

}  // namespace
}  // namespace trmma
