#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "mm/hmm.h"
#include "mm/lhmm.h"
#include "mm/nearest.h"
#include "mm/route_stitch.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

/// Fixture building a small dataset and the routing substrates once.
class MatcherFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::MakeTinyDataset("XA", 80));
    index_ = new SegmentRTree(*dataset_->network);
    ubodt_ = new Ubodt(*dataset_->network, 3000.0);
    stats_ = new TransitionStats(*dataset_->network);
    for (int idx : dataset_->train_idx) {
      stats_->AddRoute(dataset_->samples[idx].route);
    }
    planner_ = new DaRoutePlanner(*dataset_->network, *stats_);
    engine_ = new ShortestPathEngine(*dataset_->network);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete planner_;
    delete stats_;
    delete ubodt_;
    delete index_;
    delete dataset_;
  }

  /// Pointwise segment accuracy of a matcher on the test split.
  static double PointAccuracy(MapMatcher& matcher, int max_samples = 25) {
    int64_t total = 0;
    int64_t ok = 0;
    int count = 0;
    for (int idx : dataset_->test_idx) {
      if (count++ >= max_samples) break;
      const auto& sample = dataset_->samples[idx];
      auto segs = matcher.MatchPoints(sample.sparse);
      for (size_t i = 0; i < segs.size(); ++i) {
        ok += segs[i] == sample.truth[sample.sparse_indices[i]].segment;
        ++total;
      }
    }
    return static_cast<double>(ok) / total;
  }

  static Dataset* dataset_;
  static SegmentRTree* index_;
  static Ubodt* ubodt_;
  static TransitionStats* stats_;
  static DaRoutePlanner* planner_;
  static ShortestPathEngine* engine_;
};

Dataset* MatcherFixture::dataset_ = nullptr;
SegmentRTree* MatcherFixture::index_ = nullptr;
Ubodt* MatcherFixture::ubodt_ = nullptr;
TransitionStats* MatcherFixture::stats_ = nullptr;
DaRoutePlanner* MatcherFixture::planner_ = nullptr;
ShortestPathEngine* MatcherFixture::engine_ = nullptr;

TEST_F(MatcherFixture, NearestMatchesEveryPoint) {
  NearestMatcher nearest(*dataset_->network, *index_);
  const auto& sample = dataset_->samples[0];
  auto segs = nearest.MatchPoints(sample.sparse);
  ASSERT_EQ(segs.size(), static_cast<size_t>(sample.sparse.size()));
  for (SegmentId s : segs) EXPECT_NE(s, kInvalidSegment);
}

TEST_F(MatcherFixture, NearestIsDecentButImperfect) {
  NearestMatcher nearest(*dataset_->network, *index_);
  const double acc = PointAccuracy(nearest);
  EXPECT_GT(acc, 0.4);
  EXPECT_LT(acc, 0.98);
}

TEST_F(MatcherFixture, HmmBeatsNearest) {
  NearestMatcher nearest(*dataset_->network, *index_);
  HmmMatcher hmm(*dataset_->network, *index_);
  EXPECT_GT(PointAccuracy(hmm), PointAccuracy(nearest));
}

TEST_F(MatcherFixture, FmmMatchesHmmDecisions) {
  // FMM is HMM + precomputation: with the UBODT delta covering the HMM's
  // search radius, the decoded segments must be (near) identical.
  HmmMatcher hmm(*dataset_->network, *index_);
  FmmMatcher fmm(*dataset_->network, *index_, *ubodt_);
  int same = 0;
  int total = 0;
  for (int t = 0; t < 10; ++t) {
    const auto& sample = dataset_->samples[dataset_->test_idx[t]];
    auto a = hmm.MatchPoints(sample.sparse);
    auto b = fmm.MatchPoints(sample.sparse);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      same += a[i] == b[i];
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(same) / total, 0.9);
}

TEST_F(MatcherFixture, LhmmTrainingImprovesOverUntrained) {
  LhmmMatcher untrained(*dataset_->network, *index_, *ubodt_);
  LhmmMatcher trained(*dataset_->network, *index_, *ubodt_);
  Rng rng(5);
  const double loss = trained.Train(*dataset_, 3, rng);
  EXPECT_GT(loss, 0.0);
  EXPECT_GE(PointAccuracy(trained) + 0.02, PointAccuracy(untrained));
}

TEST_F(MatcherFixture, StitchedRoutesAreConnected) {
  HmmMatcher hmm(*dataset_->network, *index_);
  for (int t = 0; t < 10; ++t) {
    const auto& sample = dataset_->samples[dataset_->test_idx[t]];
    auto segs = hmm.MatchPoints(sample.sparse);
    Route route = StitchRoute(*dataset_->network, *planner_, *engine_, segs);
    EXPECT_TRUE(IsConnectedRoute(*dataset_->network, route));
    // Every matched segment appears on the route.
    for (SegmentId s : segs) {
      EXPECT_NE(std::find(route.begin(), route.end(), s), route.end());
    }
  }
}

TEST_F(MatcherFixture, StitchSinglePoint) {
  Route route = StitchRoute(*dataset_->network, *planner_, *engine_, {7});
  EXPECT_EQ(route, Route{7});
}

TEST_F(MatcherFixture, StitchDeduplicatesRepeats) {
  Route route =
      StitchRoute(*dataset_->network, *planner_, *engine_, {7, 7, 7});
  EXPECT_EQ(route, Route{7});
}

TEST_F(MatcherFixture, HmmRecoversCleanTrajectory) {
  // A noise-free trajectory generated on the network must be matched with
  // high pointwise accuracy.
  const auto& sample = dataset_->samples[dataset_->test_idx[0]];
  Trajectory clean;
  std::vector<SegmentId> truth;
  for (int idx : sample.sparse_indices) {
    clean.points.push_back(GpsFromMatched(*dataset_->network,
                                          sample.truth[idx]));
    truth.push_back(sample.truth[idx].segment);
  }
  HmmMatcher hmm(*dataset_->network, *index_);
  auto segs = hmm.MatchPoints(clean);
  int ok = 0;
  for (size_t i = 0; i < segs.size(); ++i) ok += segs[i] == truth[i];
  EXPECT_GE(static_cast<double>(ok) / segs.size(), 0.8);
}

TEST_F(MatcherFixture, EmptyTrajectoryIsHandled) {
  HmmMatcher hmm(*dataset_->network, *index_);
  Trajectory empty;
  EXPECT_TRUE(hmm.MatchPoints(empty).empty());
}

}  // namespace
}  // namespace trmma
