#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"
#include "serve/session.h"
#include "tests/test_util.h"

namespace trmma {
namespace {

/// Serving-engine chaos harness (ISSUE acceptance): offered load ramps past
/// capacity while faults fire, and the engine must shed rather than queue
/// without bound, fire deadlines, trip and recover its breakers, and keep
/// the four-way outcome accounting exact — no silent drops, no aborts.
class ServeChaosFixture : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::MakeTinyDataset("XA", 120));
    stack_ = new ExperimentStack();
    stack_->dataset = dataset_;
    stack_->index = std::make_unique<SegmentRTree>(*dataset_->network);
    stack_->stats = std::make_unique<TransitionStats>(*dataset_->network);
    for (int idx : dataset_->train_idx) {
      stack_->stats->AddRoute(dataset_->samples[idx].route);
    }
    stack_->engine = std::make_unique<ShortestPathEngine>(*dataset_->network);
    stack_->planner =
        std::make_unique<DaRoutePlanner>(*dataset_->network, *stack_->stats);

    MmaConfig mma_config;
    mma_config.d0 = 16;
    mma_config.d1 = 32;
    mma_config.d2 = 16;
    mma_config.d3 = 32;
    mma_config.trans_ffn = 32;
    stack_->mma = std::make_unique<MmaMatcher>(*dataset_->network,
                                               *stack_->index, mma_config);
    Rng mma_rng(1);
    for (int e = 0; e < 2; ++e) stack_->mma->TrainEpoch(*dataset_, mma_rng);

    TrmmaConfig trmma_config;
    trmma_config.dh = 16;
    trmma_config.trans_ffn = 32;
    stack_->trmma = std::make_unique<TrmmaRecovery>(
        *dataset_->network, stack_->mma.get(), stack_->planner.get(),
        stack_->engine.get(), trmma_config);
    Rng trmma_rng(2);
    stack_->trmma->TrainEpoch(*dataset_, trmma_rng);
  }
  static void TearDownTestSuite() {
    delete stack_;
    delete dataset_;
  }

  static std::unique_ptr<serve::ServingSession> MakeSession(
      serve::ServeConfig serve_config) {
    serve::SessionConfig config;
    config.serve = serve_config;
    config.epsilon = dataset_->epsilon_s;
    auto session = serve::ServingSession::Create(*stack_, config);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return session.ok() ? std::move(session).value() : nullptr;
  }

  static serve::ServeRequest SampleRequest(int i) {
    const TrajectorySample& sample =
        dataset_->samples[dataset_->test_idx[
            static_cast<size_t>(i) % dataset_->test_idx.size()]];
    serve::ServeRequest req;
    if (i % 2 == 0) {
      req.kind = serve::RequestKind::kMatch;
      req.traj = sample.raw;
    } else {
      req.kind = serve::RequestKind::kRecover;
      req.traj = sample.sparse;
      req.epsilon = dataset_->epsilon_s;
    }
    return req;
  }

  /// All-NaN input: the sanitizer discards every point, so recovery fails
  /// deterministically — the poison that trips the recover breaker.
  static serve::ServeRequest PoisonRequest() {
    serve::ServeRequest req;
    req.kind = serve::RequestKind::kRecover;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (int i = 0; i < 5; ++i) {
      GpsPoint p;
      p.pos = LatLng{nan, nan};
      p.t = 15.0 * i;
      req.traj.points.push_back(p);
    }
    return req;
  }

  static Dataset* dataset_;
  static ExperimentStack* stack_;
};

Dataset* ServeChaosFixture::dataset_ = nullptr;
ExperimentStack* ServeChaosFixture::stack_ = nullptr;

TEST_F(ServeChaosFixture, OverloadRampShedsInsteadOfQueueingUnbounded) {
  serve::ServeConfig config;
  config.threads = 2;
  config.queue_cap = 8;
  config.deadline_ms = 500.0;
  config.max_retries = 0;
  auto session = MakeSession(config);
  ASSERT_NE(session, nullptr);

  // Ramp: each burst submits back-to-back (far past capacity in the last
  // leg), then waits for every future before the next.
  int64_t total = 0;
  for (int burst_size : {8, 32, 96}) {
    std::vector<std::future<serve::ServeResponse>> futures;
    futures.reserve(static_cast<size_t>(burst_size));
    for (int i = 0; i < burst_size; ++i) {
      futures.push_back(session->Submit(SampleRequest(i)));
    }
    for (auto& f : futures) {
      const serve::ServeResponse resp = f.get();
      if (resp.outcome == serve::Outcome::kShed) {
        EXPECT_GT(resp.retry_after_ms, 0.0);
      }
    }
    total += burst_size;
    const serve::ServeStats s = session->stats();
    EXPECT_EQ(s.submitted, total) << "burst " << burst_size;
    EXPECT_TRUE(s.Consistent()) << "burst " << burst_size;
  }

  session->Stop();
  const serve::ServeStats stats = session->stats();
  EXPECT_TRUE(stats.Consistent());
  EXPECT_GT(stats.shed, 0) << "a 96-deep burst must overflow an 8-slot queue";
  EXPECT_LE(stats.peak_queue_depth, config.queue_cap)
      << "the queue must never grow past its cap";
  EXPECT_GT(stats.success, 0) << "overload must not starve all requests";
  EXPECT_EQ(session->engine().queue_depth(), 0);
}

TEST_F(ServeChaosFixture, TightDeadlinesFireUnderBacklog) {
  serve::ServeConfig config;
  config.threads = 1;
  config.queue_cap = 64;
  config.deadline_ms = 2.0;
  config.max_retries = 0;
  auto session = MakeSession(config);
  ASSERT_NE(session, nullptr);

  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(session->Submit(SampleRequest(i)));
  }
  for (auto& f : futures) (void)f.get();
  session->Stop();

  const serve::ServeStats stats = session->stats();
  EXPECT_TRUE(stats.Consistent());
  // With a 2ms budget and one worker, the backlog expires in the queue.
  EXPECT_GT(stats.timeout, 0);
  EXPECT_EQ(stats.timeout, stats.deadline_expired);
}

TEST_F(ServeChaosFixture, PoisonTripsTheBreakerAndProbesRecoverIt) {
  serve::ServeConfig config;
  config.threads = 1;
  config.deadline_ms = 0.0;
  config.max_retries = 0;
  config.breaker.window = 8;
  config.breaker.min_samples = 4;
  config.breaker.trip_ratio = 0.5;
  config.breaker.cooldown_ms = 150.0;
  config.breaker.half_open_probes = 2;
  auto session = MakeSession(config);
  ASSERT_NE(session, nullptr);

  // A request the healthy stack can actually serve, for probing later.
  int good = -1;
  for (int i = 1; i < 20; i += 2) {
    if (session->SubmitAndWait(SampleRequest(i)).status.ok()) {
      good = i;
      break;
    }
  }
  ASSERT_NE(good, -1) << "no recoverable sample in the test split";

  // Poison until the recover breaker trips.
  int poisons = 0;
  while (session->engine().breaker_state(serve::RequestKind::kRecover) !=
             serve::BreakerState::kOpen &&
         poisons < 12) {
    const serve::ServeResponse resp = session->SubmitAndWait(PoisonRequest());
    EXPECT_EQ(resp.outcome, serve::Outcome::kDegraded);
    EXPECT_FALSE(resp.status.ok());
    ++poisons;
  }
  ASSERT_EQ(session->engine().breaker_state(serve::RequestKind::kRecover),
            serve::BreakerState::kOpen)
      << "deterministic poison failures must trip the breaker";

  // Open breaker sheds before execution, with a backoff hint.
  const serve::ServeResponse shed = session->SubmitAndWait(PoisonRequest());
  EXPECT_EQ(shed.outcome, serve::Outcome::kShed);
  EXPECT_EQ(shed.shed_reason, "breaker_open");
  EXPECT_GT(shed.retry_after_ms, 0.0);

  // The match class is isolated: its breaker never saw the poison.
  EXPECT_EQ(session->engine().breaker_state(serve::RequestKind::kMatch),
            serve::BreakerState::kClosed);

  // After the cooldown, half-open probes carry healthy traffic and the
  // breaker closes again.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  for (int i = 0; i < 2; ++i) {
    const serve::ServeResponse probe =
        session->SubmitAndWait(SampleRequest(good));
    EXPECT_TRUE(probe.status.ok()) << probe.status.ToString();
  }
  EXPECT_EQ(session->engine().breaker_state(serve::RequestKind::kRecover),
            serve::BreakerState::kClosed);
  EXPECT_TRUE(session->SubmitAndWait(SampleRequest(good)).status.ok());

  session->Stop();
  EXPECT_TRUE(session->stats().Consistent());
}

TEST_F(ServeChaosFixture, FaultInjectedRampStaysAccountable) {
  FaultInjectionConfig faults;
  faults.coord_spike_prob = 0.03;
  faults.coord_nan_prob = 0.02;
  faults.ts_shuffle_prob = 0.05;
  faults.drop_point_prob = 0.02;
  faults.seed = 9;
  FaultInjector injector(faults);

  serve::ServeConfig config;
  config.threads = 2;
  // This test is about fault accountability, not shedding: the queue is
  // sized to absorb the whole burst so every request actually executes.
  config.queue_cap = 128;
  config.deadline_ms = 2000.0;
  config.max_retries = 1;
  config.faults = &injector;
  auto session = MakeSession(config);
  ASSERT_NE(session, nullptr);

  const bool metrics_were_on = obs::MetricsEnabled();
  if (!metrics_were_on) obs::SetTraceMode(obs::TraceMode::kMetrics);

  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 96; ++i) {
    // Recover-only: corrupted inputs flow through the sanitizer, which is
    // the contract for damaged data (match serves clean traffic elsewhere).
    futures.push_back(session->Submit(SampleRequest(2 * i + 1)));
  }
  int64_t delivered = 0;
  for (auto& f : futures) {
    const serve::ServeResponse resp = f.get();
    if (resp.outcome == serve::Outcome::kSuccess ||
        resp.outcome == serve::Outcome::kDegraded) {
      ++delivered;
    }
  }
  session->Stop();

  const serve::ServeStats stats = session->stats();
  EXPECT_TRUE(stats.Consistent()) << "faults must never lose a request";
  EXPECT_EQ(stats.submitted, 96);
  EXPECT_GT(delivered, 48) << "most corrupted requests still get answers";
  EXPECT_LE(stats.peak_queue_depth, config.queue_cap);

  // The serve counters flowed into the global registry (the /metrics
  // exporter reads the same registry, so this is the observable surface).
  int64_t submitted_metric = 0;
  EXPECT_TRUE(obs::MetricRegistry::Global().SumCountersByName(
      "serve.requests.total", &submitted_metric));
  EXPECT_GE(submitted_metric, 96);
  int64_t outcomes_metric = 0;
  EXPECT_TRUE(obs::MetricRegistry::Global().SumCountersByName(
      "serve.outcome.total", &outcomes_metric));
  EXPECT_GE(outcomes_metric, 96);
  if (!metrics_were_on) obs::SetTraceMode(obs::TraceMode::kOff);
}

}  // namespace
}  // namespace trmma
