#include "obs/quality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/json_parse.h"
#include "obs/request_record.h"

namespace trmma {
namespace obs {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// ComputeCalibration.
// ---------------------------------------------------------------------------

TEST(CalibrationTest, EmptyInputYieldsZeroedBins) {
  const CalibrationSummary cal = ComputeCalibration({}, 10);
  ASSERT_EQ(cal.bins.size(), 10u);
  EXPECT_EQ(cal.samples, 0);
  EXPECT_EQ(cal.dropped_nonfinite, 0);
  EXPECT_EQ(cal.dropped_out_of_range, 0);
  EXPECT_DOUBLE_EQ(cal.ece, 0.0);
  EXPECT_DOUBLE_EQ(cal.brier, 0.0);
  for (const CalibrationBin& bin : cal.bins) {
    EXPECT_EQ(bin.count, 0);
    EXPECT_DOUBLE_EQ(bin.mean_confidence(), 0.0);
    EXPECT_DOUBLE_EQ(bin.accuracy(), 0.0);
  }
  // Bin edges tile [0, 1] without gaps.
  EXPECT_DOUBLE_EQ(cal.bins.front().lo, 0.0);
  EXPECT_DOUBLE_EQ(cal.bins.back().hi, 1.0);
  for (std::size_t b = 1; b < cal.bins.size(); ++b) {
    EXPECT_DOUBLE_EQ(cal.bins[b].lo, cal.bins[b - 1].hi);
  }
}

TEST(CalibrationTest, SingleSampleEce) {
  // One correct prediction at confidence 0.7: its bin holds the whole mass,
  // so ECE = |1.0 - 0.7| and Brier = (0.7 - 1)^2.
  const CalibrationSummary cal = ComputeCalibration({{0.7, true}}, 10);
  EXPECT_EQ(cal.samples, 1);
  EXPECT_NEAR(cal.ece, 0.3, 1e-12);
  EXPECT_NEAR(cal.brier, 0.09, 1e-12);
  EXPECT_EQ(cal.bins[7].count, 1);
  EXPECT_DOUBLE_EQ(cal.bins[7].mean_confidence(), 0.7);
  EXPECT_DOUBLE_EQ(cal.bins[7].accuracy(), 1.0);
}

TEST(CalibrationTest, PerfectCalibrationHasZeroEce) {
  // Half correct at confidence 0.5: accuracy == mean confidence in the one
  // occupied bin.
  const CalibrationSummary cal =
      ComputeCalibration({{0.5, true}, {0.5, false}}, 10);
  EXPECT_EQ(cal.samples, 2);
  EXPECT_NEAR(cal.ece, 0.0, 1e-12);
  EXPECT_NEAR(cal.brier, 0.25, 1e-12);
}

TEST(CalibrationTest, NonFiniteConfidencesDroppedAndCounted) {
  const CalibrationSummary cal = ComputeCalibration(
      {{kNaN, true}, {kInf, false}, {-kInf, true}, {0.5, true}}, 10);
  EXPECT_EQ(cal.samples, 1);
  EXPECT_EQ(cal.dropped_nonfinite, 3);
  EXPECT_EQ(cal.dropped_out_of_range, 0);
  // The survivor alone defines the metrics; NaN never propagates.
  EXPECT_TRUE(std::isfinite(cal.ece));
  EXPECT_TRUE(std::isfinite(cal.brier));
  EXPECT_NEAR(cal.brier, 0.25, 1e-12);
}

TEST(CalibrationTest, OutOfRangeConfidencesDroppedSeparately) {
  // HMM-style log-prob scores are finite but not probabilities — they must
  // be counted apart from NaNs and kept out of the bins.
  const CalibrationSummary cal = ComputeCalibration(
      {{-153.2, true}, {1.5, false}, {1.0, true}, {0.0, false}}, 10);
  EXPECT_EQ(cal.samples, 2);
  EXPECT_EQ(cal.dropped_out_of_range, 2);
  EXPECT_EQ(cal.dropped_nonfinite, 0);
  // Edge values land in the terminal bins (1.0 clamps into the last).
  EXPECT_EQ(cal.bins.front().count, 1);
  EXPECT_EQ(cal.bins.back().count, 1);
}

// ---------------------------------------------------------------------------
// PopulationStabilityIndex.
// ---------------------------------------------------------------------------

TEST(PsiTest, IdenticalDistributionsAreExactlyZero) {
  const std::vector<double> x = {5, 10, 25, 10, 5};
  bool degenerate = true;
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex(x, x, &degenerate), 0.0);
  EXPECT_FALSE(degenerate);
  // Scale invariance: PSI compares shapes, not totals.
  const std::vector<double> x10 = {50, 100, 250, 100, 50};
  EXPECT_NEAR(PopulationStabilityIndex(x, x10), 0.0, 1e-9);
}

TEST(PsiTest, ShiftedDistributionIsPositive) {
  const std::vector<double> train = {80, 15, 5, 0};
  const std::vector<double> serve = {5, 15, 30, 50};
  bool degenerate = true;
  const double psi = PopulationStabilityIndex(train, serve, &degenerate);
  EXPECT_FALSE(degenerate);
  EXPECT_GT(psi, 0.25);  // textbook "drifted" territory
  // Symmetric in its arguments (the (p-q)·ln(p/q) form).
  EXPECT_NEAR(psi, PopulationStabilityIndex(serve, train), 1e-12);
}

TEST(PsiTest, DegenerateDistributionsFlagged) {
  bool degenerate = false;
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex({}, {1, 2}, &degenerate), 0.0);
  EXPECT_TRUE(degenerate);
  degenerate = false;
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex({1, 2}, {}, &degenerate), 0.0);
  EXPECT_TRUE(degenerate);
  degenerate = false;
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex({1, 2, 3}, {1, 2}, &degenerate),
                   0.0);
  EXPECT_TRUE(degenerate);
  degenerate = false;  // all-zero side: no distribution to compare against
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex({0, 0}, {1, 2}, &degenerate),
                   0.0);
  EXPECT_TRUE(degenerate);
  degenerate = false;  // negative/NaN counts are treated as empty bins
  EXPECT_DOUBLE_EQ(
      PopulationStabilityIndex({-5, kNaN}, {1, 2}, &degenerate), 0.0);
  EXPECT_TRUE(degenerate);
}

TEST(PsiTest, SingleBinDistributionsWellDefined) {
  bool degenerate = true;
  const double psi =
      PopulationStabilityIndex({100, 0}, {0, 100}, &degenerate);
  EXPECT_FALSE(degenerate);
  EXPECT_TRUE(std::isfinite(psi));
  EXPECT_GT(psi, 1.0);  // total mass swap is maximal drift
}

// ---------------------------------------------------------------------------
// Slice buckets (the labels are report schema — pin them).
// ---------------------------------------------------------------------------

TEST(BucketTest, EpsilonEdges) {
  EXPECT_EQ(EpsilonBucket(0.0), "unknown");
  EXPECT_EQ(EpsilonBucket(-3.0), "unknown");
  EXPECT_EQ(EpsilonBucket(kNaN), "unknown");
  EXPECT_EQ(EpsilonBucket(15.0), "<=15s");
  EXPECT_EQ(EpsilonBucket(15.001), "<=30s");
  EXPECT_EQ(EpsilonBucket(60.0), "<=60s");
  EXPECT_EQ(EpsilonBucket(180.0), "<=180s");
  EXPECT_EQ(EpsilonBucket(180.001), ">180s");
}

TEST(BucketTest, GapCandidateDensityOutcome) {
  EXPECT_EQ(GapBucket(0.0), "unknown");
  EXPECT_EQ(GapBucket(30.0), "<=30s");
  EXPECT_EQ(GapBucket(301.0), ">300s");
  EXPECT_EQ(CandidateCountBucket(0.0), "none");
  EXPECT_EQ(CandidateCountBucket(2.0), "1-2");
  EXPECT_EQ(CandidateCountBucket(8.5), ">8");
  EXPECT_EQ(DensityBucket(0.0), "unknown");
  EXPECT_EQ(DensityBucket(50.0), "dense(<=50m)");
  EXPECT_EQ(DensityBucket(150.0), "mid(50-150m)");
  EXPECT_EQ(DensityBucket(400.0), "sparse(150-400m)");
  EXPECT_EQ(DensityBucket(401.0), "isolated(>400m)");
  EXPECT_EQ(OutcomeBucket(""), "none");
  EXPECT_EQ(OutcomeBucket("fallback_nearest"), "fallback_nearest");
}

// ---------------------------------------------------------------------------
// QualitySampleFromRecord.
// ---------------------------------------------------------------------------

RequestRecord MakeRecord() {
  RequestRecord r;
  r.kind = "mm";
  r.method = "MMA";
  r.city = "PT";
  r.quality = 0.75;
  r.epsilon = 60;
  r.gamma = 0.5;  // effective interval 120s -> "<=120s"
  r.input = {{0.0, 0.0, 0.0}, {0.0, 0.01, 40.0}, {0.0, 0.02, 75.0}};
  r.truth_segments = {7, -1, 9};
  r.candidates = {{{7, 12.0, 0.5}, {8, 30.0, 0.2}},
                  {{8, 10.0, 0.1}},
                  {{5, 20.0, 0.3}, {9, 45.0, 0.8}}};
  r.matched = {{7, 0.5, 0.0}, {8, 0.1, 40.0}, {5, 0.3, 75.0}};
  r.scores = {0.9, 0.6, kNaN};
  return r;
}

TEST(QualitySampleTest, BucketsAndPairing) {
  const QualitySample s = QualitySampleFromRecord(MakeRecord());
  EXPECT_EQ(s.kind, "mm");
  EXPECT_EQ(s.epsilon_bucket, "<=120s");  // 60 / 0.5
  EXPECT_EQ(s.gap_bucket, "<=60s");       // max dt = 40
  // Mean candidates 5/3, mean kth distance (30+10+45)/3 = 28.3.
  EXPECT_EQ(s.candidate_bucket, "1-2");
  EXPECT_EQ(s.density_bucket, "dense(<=50m)");
  EXPECT_EQ(s.outcome_bucket, "none");
  // Point 1 has unknown truth -> skipped; points 0 and 2 pair up.
  ASSERT_EQ(s.confidences.size(), 2u);
  EXPECT_DOUBLE_EQ(s.confidences[0].confidence, 0.9);
  EXPECT_TRUE(s.confidences[0].correct);   // matched 7 == truth 7
  EXPECT_FALSE(s.confidences[1].correct);  // matched 5 != truth 9
  // Chosen ranks: 7 is rank 0, 8 is rank 0, 5 is rank 0.
  EXPECT_EQ(s.chosen_rank, (std::vector<int>{0, 0, 0}));
  // Truth ranks (points 0 and 2): 7 at rank 0, 9 at rank 1.
  EXPECT_EQ(s.truth_rank, (std::vector<int>{0, 1}));
}

TEST(QualitySampleTest, FallbackIntervalAndMissingTruth) {
  RequestRecord r = MakeRecord();
  r.epsilon = 0;  // pre-gamma record: mean observed dt = 75/2 = 37.5
  r.truth_segments.clear();
  const QualitySample s = QualitySampleFromRecord(r);
  EXPECT_EQ(s.epsilon_bucket, "<=60s");
  EXPECT_TRUE(s.confidences.empty());
  // Unpaired NaN scores still surface through the counter.
  EXPECT_EQ(s.confidence_nonfinite, 1);
  EXPECT_TRUE(s.truth_rank.empty());
}

TEST(QualitySampleTest, TruthOutsideCandidatesHitsOverflowBucket) {
  RequestRecord r = MakeRecord();
  r.truth_segments = {999, 999, 999};
  const QualitySample s = QualitySampleFromRecord(r);
  EXPECT_EQ(s.truth_rank,
            (std::vector<int>{kQualityRankBuckets, kQualityRankBuckets,
                              kQualityRankBuckets}));
}

// ---------------------------------------------------------------------------
// Aggregator + JSON.
// ---------------------------------------------------------------------------

TEST(QualityAggregatorTest, GroupsSlicesAndCalibrationJson) {
  QualityAggregator agg;
  agg.AddRecord(MakeRecord());
  RequestRecord unscored = MakeRecord();
  unscored.quality = -1.0;
  agg.AddRecord(unscored);
  EXPECT_TRUE(agg.HasData());
  EXPECT_EQ(agg.requests(), 2);

  auto doc = ParseJson(agg.GroupsJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->AsArray().size(), 1u);
  const JsonValue& g = doc->AsArray()[0];
  EXPECT_EQ(g.Get("kind").AsString(), "mm");
  EXPECT_EQ(g.Get("method").AsString(), "MMA");
  EXPECT_EQ(g.Get("city").AsString(), "PT");
  EXPECT_EQ(g.Get("requests").AsNumber(), 2.0);
  EXPECT_EQ(g.Get("scored").AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(g.Get("mean_quality").AsNumber(), 0.75);

  // 5 dimensions, one bucket each for identical samples.
  ASSERT_EQ(g.Get("slices").AsArray().size(), 5u);
  bool saw_epsilon = false;
  for (const JsonValue& s : g.Get("slices").AsArray()) {
    EXPECT_EQ(s.Get("requests").AsNumber(), 2.0);
    EXPECT_EQ(s.Get("scored").AsNumber(), 1.0);
    if (s.Get("dimension").AsString() == "epsilon") {
      saw_epsilon = true;
      EXPECT_EQ(s.Get("bucket").AsString(), "<=120s");
    }
  }
  EXPECT_TRUE(saw_epsilon);

  const JsonValue& cal = g.Get("calibration");
  // 2 pairs per record, but the second score of each is NaN and drops.
  EXPECT_EQ(cal.Get("samples").AsNumber(), 2.0);
  EXPECT_EQ(cal.Get("dropped_nonfinite").AsNumber(), 2.0);
  EXPECT_EQ(cal.Get("bins").AsArray().size(), 10u);
  ASSERT_EQ(cal.Get("chosen_rank").AsArray().size(),
            static_cast<std::size_t>(kQualityRankBuckets + 1));
  ASSERT_EQ(cal.Get("truth_rank").AsArray().size(),
            static_cast<std::size_t>(kQualityRankBuckets + 1));
  EXPECT_EQ(cal.Get("chosen_rank").AsArray()[0].AsNumber(), 6.0);
  EXPECT_EQ(cal.Get("truth_rank").AsArray()[1].AsNumber(), 2.0);

  agg.Reset();
  EXPECT_FALSE(agg.HasData());
  EXPECT_EQ(agg.requests(), 0);
}

TEST(QualityAggregatorTest, NanScoresFeedDroppedCounterNotMetrics) {
  // All scores NaN with known truth: they pair up, get dropped at
  // calibration time, and the counter reports them. This must be checked
  // in-process — JsonWriter flattens NaN to 0 at serialization, so a JSON
  // round-trip can't distinguish a dropped NaN from a confident zero.
  QualityAggregator agg;
  RequestRecord r = MakeRecord();
  r.scores = {kNaN, kNaN, kNaN};
  agg.AddRecord(r);
  auto doc = ParseJson(agg.GroupsJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& cal = doc->AsArray()[0].Get("calibration");
  EXPECT_EQ(cal.Get("samples").AsNumber(), 0.0);
  EXPECT_EQ(cal.Get("dropped_nonfinite").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(cal.Get("ece").AsNumber(), 0.0);
}

// ---------------------------------------------------------------------------
// QualityLog: gate split, drift histograms, summary JSON.
// ---------------------------------------------------------------------------

class QualityLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QualityLog::Global().Configure(false);
    QualityLog::Global().ResetForTest();
    FlightRecorder::Global().Configure(FlightRecorderConfig());
    FlightRecorder::Global().ResetForTest();
  }
  void TearDown() override {
    QualityLog::Global().Configure(false);
    QualityLog::Global().ResetForTest();
    FlightRecorder::Global().Configure(FlightRecorderConfig());
    FlightRecorder::Global().ResetForTest();
  }
};

TEST_F(QualityLogTest, QualityCapturesWithoutFlightRetention) {
  // The gate split: quality telemetry alone must activate RequestScope
  // capture, while the flight recorder proper stays off.
  QualityLog::Global().Configure(true);
  EXPECT_TRUE(QualityEnabled());
  EXPECT_FALSE(FlightRecorder::Global().enabled());
  {
    RequestScope scope("mm");
    RequestRecord* rec = ActiveRecord();
    ASSERT_NE(rec, nullptr);
    rec->method = "MMA";
    rec->city = "PT";
    rec->quality = 0.5;
  }
  EXPECT_TRUE(QualityLog::Global().HasData());
  EXPECT_EQ(FlightRecorder::Global().stats().requests, 0);
}

TEST_F(QualityLogTest, DisabledMeansNoCaptureAtAll) {
  {
    RequestScope scope("mm");
    EXPECT_EQ(ActiveRecord(), nullptr);
  }
  EXPECT_FALSE(QualityLog::Global().HasData());
}

TEST_F(QualityLogTest, DriftHistogramsSplitByPhase) {
  QualityLog::Global().Configure(true);
  QualityLog::Global().ObserveFeature(kFeatureCandidateCount, 4.0);
  {
    QualityPhaseScope train(QualityPhase::kTrain);
    QualityLog::Global().ObserveFeature(kFeatureCandidateCount, 4.0);
    QualityLog::Global().ObserveFeature(kFeatureCandidateCount, 12.0);
  }
  // Scope restored: back to serve.
  QualityLog::Global().ObserveFeature(kFeatureCandidateCount, 1e9);  // clamps
  QualityLog::Global().ObserveFeature(kFeatureCandidateCount, kNaN);  // drops

  const std::vector<double> serve =
      QualityLog::Global().DriftCounts(kFeatureCandidateCount,
                                       QualityPhase::kServe);
  const std::vector<double> train =
      QualityLog::Global().DriftCounts(kFeatureCandidateCount,
                                       QualityPhase::kTrain);
  double serve_total = 0.0;
  double train_total = 0.0;
  for (double x : serve) serve_total += x;
  for (double x : train) train_total += x;
  EXPECT_EQ(serve_total, 2.0);  // the NaN observation was dropped
  EXPECT_EQ(train_total, 2.0);
  EXPECT_EQ(serve.back(), 1.0);  // overflow clamped to the last bin
}

TEST_F(QualityLogTest, SummaryJsonCarriesGroupsAndDrift) {
  QualityLog::Global().Configure(true);
  QualityLog::Global().Ingest(MakeRecord());
  QualityLog::Global().ObserveFeature(kFeatureGapSeconds, 40.0);
  {
    QualityPhaseScope train(QualityPhase::kTrain);
    QualityLog::Global().ObserveFeature(kFeatureGapSeconds, 40.0);
  }
  auto doc = ParseJson(QualityLog::Global().SummaryJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->Get("groups").AsArray().size(), 1u);
  ASSERT_EQ(doc->Get("drift").AsArray().size(), 1u);
  const JsonValue& d = doc->Get("drift").AsArray()[0];
  EXPECT_EQ(d.Get("feature").AsString(), "gap_seconds");
  EXPECT_EQ(d.Get("train").AsNumber(), 1.0);
  EXPECT_EQ(d.Get("serve").AsNumber(), 1.0);
  EXPECT_FALSE(d.Get("degenerate").AsBool());
  EXPECT_NEAR(d.Get("psi").AsNumber(), 0.0, 1e-9);  // identical shapes
}

}  // namespace
}  // namespace obs
}  // namespace trmma
