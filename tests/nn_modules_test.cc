#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "nn/attention.h"
#include "nn/gradcheck.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "nn/transformer.h"

namespace trmma {
namespace nn {
namespace {

namespace ops = nn::ops;

Matrix RandomInput(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(-1, 1);
  return m;
}

TEST(LinearTest, ShapesAndParamCount) {
  Rng rng(1);
  Linear fc(4, 3, rng);
  EXPECT_EQ(fc.NumParameters(), 4 * 3 + 3);
  Tape tape;
  Tensor y = fc.Forward(ops::Input(tape, RandomInput(5, 4, 2)));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
}

TEST(MlpTest, GradientCheck) {
  Rng rng(3);
  Mlp mlp(3, 8, 2, rng);
  auto loss_fn = [&](Tape& tape) {
    Tensor x = ops::Input(tape, RandomInput(4, 3, 4));
    return ops::SumAll(ops::Sigmoid(mlp.Forward(x)));
  };
  auto result = CheckGradients(loss_fn, mlp.Parameters(), 1e-6, 1e-4, 8);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(LayerNormModuleTest, OutputShape) {
  LayerNorm norm(6);
  Tape tape;
  Tensor y = norm.Forward(ops::Input(tape, RandomInput(3, 6, 5)));
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 6);
}

TEST(EmbeddingModuleTest, PretrainedLoad) {
  Rng rng(6);
  Embedding emb(5, 3, rng);
  Matrix table(5, 3, 1.5);
  emb.LoadPretrained(table);
  Tape tape;
  Tensor e = emb.Forward(tape, {0, 4});
  EXPECT_DOUBLE_EQ(e.value().at(1, 2), 1.5);
}

TEST(AttentionTest, SelfAttentionShape) {
  Rng rng(7);
  MultiHeadAttention attn(8, 2, rng);
  Tape tape;
  Tensor x = ops::Input(tape, RandomInput(5, 8, 8));
  Tensor y = attn.Forward(x, x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
}

TEST(AttentionTest, CrossAttentionShape) {
  Rng rng(9);
  MultiHeadAttention attn(8, 4, rng);
  Tape tape;
  Tensor q = ops::Input(tape, RandomInput(3, 8, 10));
  Tensor k = ops::Input(tape, RandomInput(7, 8, 11));
  Tensor y = attn.Forward(q, k);
  EXPECT_EQ(y.rows(), 3);
}

TEST(AttentionTest, GradientCheck) {
  Rng rng(12);
  MultiHeadAttention attn(4, 2, rng);
  auto loss_fn = [&](Tape& tape) {
    Tensor x = ops::Input(tape, RandomInput(3, 4, 13));
    return ops::SumAll(ops::Tanh(attn.Forward(x, x)));
  };
  auto result = CheckGradients(loss_fn, attn.Parameters(), 1e-6, 1e-4, 6);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(TransformerTest, EncoderPreservesShape) {
  Rng rng(14);
  TransformerEncoder enc(8, 2, 16, 2, rng);
  Tape tape;
  Tensor y = enc.Forward(ops::Input(tape, RandomInput(6, 8, 15)));
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 8);
}

TEST(TransformerTest, PositionalEncodingValues) {
  Matrix pe = SinusoidalPositionalEncoding(4, 6);
  EXPECT_DOUBLE_EQ(pe.at(0, 0), 0.0);  // sin(0)
  EXPECT_DOUBLE_EQ(pe.at(0, 1), 1.0);  // cos(0)
  EXPECT_NEAR(pe.at(1, 0), std::sin(1.0), 1e-12);
  // Position matters: different rows differ.
  EXPECT_NE(pe.at(1, 0), pe.at(2, 0));
}

TEST(TransformerTest, OrderSensitivity) {
  // The encoder must distinguish a sequence from its reverse (positional
  // encodings at work).
  Rng rng(16);
  TransformerEncoder enc(4, 2, 8, 1, rng);
  Matrix x = RandomInput(4, 4, 17);
  Matrix x_rev(4, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) x_rev.at(r, c) = x.at(3 - r, c);
  }
  Tape tape;
  Tensor y1 = enc.Forward(ops::Input(tape, x));
  Tensor y2 = enc.Forward(ops::Input(tape, x_rev));
  // Row 0 of y1 corresponds to x row 0; row 3 of y2 is the same token at a
  // different position. They should differ.
  double diff = 0;
  for (int c = 0; c < 4; ++c) {
    diff += std::abs(y1.value().at(0, c) - y2.value().at(3, c));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(TransformerTest, LayerGradientCheck) {
  Rng rng(18);
  TransformerLayer layer(4, 2, 8, rng);
  auto loss_fn = [&](Tape& tape) {
    Tensor x = ops::Input(tape, RandomInput(3, 4, 19));
    return ops::SumAll(ops::Tanh(layer.Forward(x)));
  };
  auto result = CheckGradients(loss_fn, layer.Parameters(), 1e-6, 2e-4, 4);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(GruTest, StepShapesAndState) {
  Rng rng(20);
  GruCell gru(3, 5, rng);
  Tape tape;
  Tensor x = ops::Input(tape, RandomInput(1, 3, 21));
  Tensor h0 = ops::Input(tape, Matrix(1, 5));
  Tensor h1 = gru.Step(x, h0);
  EXPECT_EQ(h1.rows(), 1);
  EXPECT_EQ(h1.cols(), 5);
  // State must stay bounded (gating).
  for (int c = 0; c < 5; ++c) {
    EXPECT_LT(std::abs(h1.value().at(0, c)), 1.0);
  }
}

TEST(GruTest, ZeroUpdateGateKeepsState) {
  // With z ~ 0 (forced by huge negative bias), h' ~ h.
  Rng rng(22);
  GruCell gru(2, 3, rng);
  auto params = gru.Parameters();
  // Parameter order: wz, uz, bz, ... (see GruCell constructor).
  params[2]->value.Fill(-50.0);  // bz -> z = sigmoid(-50) ~ 0
  Tape tape;
  Tensor x = ops::Input(tape, RandomInput(1, 2, 23));
  Matrix h_init(1, 3);
  h_init.at(0, 0) = 0.3;
  h_init.at(0, 1) = -0.2;
  h_init.at(0, 2) = 0.8;
  Tensor h1 = gru.Step(x, ops::Input(tape, h_init));
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(h1.value().at(0, c), h_init.at(0, c), 1e-6);
  }
}

TEST(GruTest, UnrolledGradientCheck) {
  Rng rng(24);
  GruCell gru(2, 3, rng);
  auto loss_fn = [&](Tape& tape) {
    Tensor h = ops::Input(tape, Matrix(1, 3));
    for (int t = 0; t < 4; ++t) {
      Tensor x = ops::Input(tape, RandomInput(1, 2, 30 + t));
      h = gru.Step(x, h);
    }
    return ops::SumAll(ops::Mul(h, h));
  };
  auto result = CheckGradients(loss_fn, gru.Parameters(), 1e-6, 1e-4, 4);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(ModuleTest, ParameterRegistryCoversChildren) {
  Rng rng(26);
  Mlp mlp(4, 8, 2, rng);
  // fc1: 4*8+8, fc2: 8*2+2
  EXPECT_EQ(mlp.NumParameters(), 32 + 8 + 16 + 2);
  EXPECT_EQ(mlp.Parameters().size(), 4u);
  mlp.ZeroGrad();
  for (Param* p : mlp.Parameters()) {
    EXPECT_DOUBLE_EQ(p->grad.Sum(), 0.0);
  }
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(28);
  Mlp a(3, 4, 2, rng);
  Mlp b(3, 4, 2, rng);  // different weights (rng advanced)
  const std::string path = testing::TempDir() + "/trmma_params_test.bin";
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  ASSERT_TRUE(LoadParameters(b.Parameters(), path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_DOUBLE_EQ(pa[i]->value.data()[j], pb[i]->value.data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(30);
  Mlp a(3, 4, 2, rng);
  Mlp wrong(3, 5, 2, rng);
  const std::string path = testing::TempDir() + "/trmma_params_bad.bin";
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  EXPECT_FALSE(LoadParameters(wrong.Parameters(), path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(31);
  Linear fc(2, 2, rng);
  EXPECT_FALSE(LoadParameters(fc.Parameters(), "/nonexistent/params").ok());
}

}  // namespace
}  // namespace nn
}  // namespace trmma
