// trmma_inspect: offline viewer and replay harness for flight-recorder
// JSONL files (see DESIGN.md §8).
//
//   trmma_inspect summary <records.jsonl>
//   trmma_inspect show    <records.jsonl> <id>
//   trmma_inspect geojson <records.jsonl> <id>
//   trmma_inspect replay  <records.jsonl> <id>
//   trmma_inspect quality <records.jsonl>
//   trmma_inspect demo    <records.jsonl> [city] [n]
//   trmma_inspect slo     <slo.json> <BENCH.json>
//   trmma_inspect postmortem <postmortem.json>
//
// <id> is a record id ("req-000042") or, for requests captured under the
// serving engine's TraceContext, the 16-hex-digit trace id printed by
// /metrics exemplars, /tracez, and SLO breach lines.
//
// `geojson` and `replay` rebuild the record's synthetic city (generation is
// seed-deterministic), so they need no side files beyond the records. `demo`
// runs a small untrained evaluation with the recorder at sample_every=1 and
// writes the captured records to the given path — the self-contained way to
// produce a records file for the other subcommands (and for ctest). `slo`
// evaluates declarative objectives (see obs/slo.h) against a bench report's
// metrics section offline and exits 1 on any breach. `postmortem` validates
// a crash report (schema "trmma.postmortem.v1", obs/postmortem.h) and prints
// a human summary — faulting thread stack, in-flight requests, span tail —
// exiting 1 on a truncated, tampered, or off-schema document.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "eval/inspect.h"
#include "gen/presets.h"
#include "obs/flight_recorder.h"
#include "obs/json_parse.h"
#include "obs/quality.h"
#include "obs/slo.h"

namespace trmma {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trmma_inspect summary <records.jsonl>\n"
               "       trmma_inspect show    <records.jsonl> <id>\n"
               "       trmma_inspect geojson <records.jsonl> <id>\n"
               "       trmma_inspect replay  <records.jsonl> <id>\n"
               "       trmma_inspect quality <records.jsonl>\n"
               "       trmma_inspect demo    <records.jsonl> [city] [n]\n"
               "       trmma_inspect slo     <slo.json> <BENCH.json>\n"
               "       trmma_inspect postmortem <postmortem.json>\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "trmma_inspect: %s\n", status.ToString().c_str());
  return 1;
}

int RunSummary(const std::string& path) {
  StatusOr<std::vector<obs::RequestRecord>> records = LoadRecords(path);
  if (!records.ok()) return Fail(records.status());
  std::fputs(SummarizeRecords(*records).c_str(), stdout);
  return 0;
}

int RunShow(const std::string& path, const std::string& id) {
  StatusOr<obs::RequestRecord> record = FindRecord(path, id);
  if (!record.ok()) return Fail(record.status());
  std::fputs(DescribeRecord(*record).c_str(), stdout);
  return 0;
}

int RunGeoJson(const std::string& path, const std::string& id) {
  StatusOr<obs::RequestRecord> record = FindRecord(path, id);
  if (!record.ok()) return Fail(record.status());
  StatusOr<Dataset> dataset = BuildCityDatasetByName(
      record->city, static_cast<int>(record->dataset_trajectories));
  if (!dataset.ok()) return Fail(dataset.status());
  std::fputs(RecordToGeoJson(*dataset->network, *record).c_str(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

int RunReplay(const std::string& path, const std::string& id) {
  StatusOr<obs::RequestRecord> record = FindRecord(path, id);
  if (!record.ok()) return Fail(record.status());
  StatusOr<ReplayDiff> diff = ReplayRecordRebuilt(*record);
  if (!diff.ok()) return Fail(diff.status());
  std::printf("replay %s: %d positions compared, %d mismatches\n",
              id.c_str(), diff->compared, diff->mismatches);
  for (const std::string& detail : diff->details) {
    std::printf("  %s\n", detail.c_str());
  }
  if (!diff->clean()) {
    std::printf("REPLAY MISMATCH\n");
    return 1;
  }
  std::printf("replay OK: route and offsets reproduced exactly\n");
  return 0;
}

// Recomputes the sliced-accuracy / calibration summary offline from a
// records file — the same aggregation the live QualityLog feeds into BENCH
// reports, so numbers are directly comparable.
int RunQuality(const std::string& path) {
  StatusOr<std::vector<obs::RequestRecord>> records = LoadRecords(path);
  if (!records.ok()) return Fail(records.status());
  obs::QualityAggregator agg;
  for (const obs::RequestRecord& record : *records) {
    agg.AddRecord(record);
  }
  std::printf("{\"requests\":%lld,\"groups\":%s}\n",
              static_cast<long long>(agg.requests()),
              agg.GroupsJson().c_str());
  return agg.HasData() ? 0 : 1;
}

// Runs untrained matchers/recovery (FMM, Nearest, Linear — deterministic
// without training) over a small city with sample_every=1 and writes every
// request to `path`. This is what the ctest CLI exercise drives.
int RunDemo(const std::string& path, const std::string& city, int n) {
  obs::FlightRecorderConfig config;
  config.enabled = true;
  config.sample_every = 1;
  config.path = path;
  obs::FlightRecorder::Global().Configure(config);

  StatusOr<Dataset> dataset = BuildCityDatasetByName(city, n);
  if (!dataset.ok()) return Fail(dataset.status());
  StackConfig stack_config;
  ExperimentStack stack = BuildStack(*dataset, stack_config);

  EvaluateMapMatching(stack, *stack.fmm, 4);
  EvaluateMapMatching(stack, *stack.nearest, 4);
  EvaluateRecovery(stack, *stack.linear, 4);

  obs::FlightRecorder::Global().Flush();
  const obs::FlightRecorder::Stats stats =
      obs::FlightRecorder::Global().stats();
  std::printf("demo: %lld requests captured, %lld written to %s\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.written), path.c_str());
  return stats.written > 0 ? 0 : 1;
}

StatusOr<obs::JsonValue> LoadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  StatusOr<obs::JsonValue> doc = obs::ParseJson(text.str());
  if (!doc.ok()) {
    return Status(doc.status().code(), path + ": " + doc.status().message());
  }
  return doc;
}

// Offline SLO check: the declarative objectives from `slo_path` against the
// metrics section of one BENCH_*.json. Prints one line per objective and
// fails (exit 1) when any objective with data is breached.
int RunSlo(const std::string& slo_path, const std::string& report_path) {
  StatusOr<obs::JsonValue> slo_doc = LoadJsonFile(slo_path);
  if (!slo_doc.ok()) return Fail(slo_doc.status());
  StatusOr<std::vector<obs::SloObjective>> objectives =
      obs::ParseSloObjectives(*slo_doc);
  if (!objectives.ok()) return Fail(objectives.status());
  StatusOr<obs::JsonValue> report = LoadJsonFile(report_path);
  if (!report.ok()) return Fail(report.status());

  const std::vector<obs::SloResult> results =
      obs::EvaluateSloAgainstReport(*objectives, *report);
  int breaches = 0;
  for (const obs::SloResult& r : results) {
    const char* verdict = !r.has_data ? "NO DATA" : (r.ok ? "ok" : "BREACH");
    if (r.has_data && !r.ok) ++breaches;
    std::printf("%-28s %-28s %-6s value=%-14g max=%-14g %s", r.name.c_str(),
                r.metric.c_str(), r.stat.empty() ? "-" : r.stat.c_str(),
                r.value, r.max, verdict);
    // Live evaluations attach the worst recent exemplar; naming it on a
    // breach gives the operator a request to chase via `show <trace_id>`.
    if (!r.exemplar_trace_id.empty() && r.has_data && !r.ok) {
      std::printf("  exemplar=%s", r.exemplar_trace_id.c_str());
    }
    std::printf("\n");
  }
  std::printf("slo: %zu objective(s), %d breach(es)\n", results.size(),
              breaches);
  return breaches > 0 ? 1 : 0;
}

bool IsHex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (const char c : s) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

// Structural validation of a "trmma.postmortem.v1" document. Strict on the
// invariants downstream tooling depends on (schema tag, thread/frame shape,
// 16-hex trace ids) and tolerant of null-degraded sections (spans/metrics/
// lock_order go null when the crash held the matching lock).
Status ValidatePostmortem(const obs::JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("not a JSON object");
  if (doc.Get("schema").AsString() != "trmma.postmortem.v1") {
    return Status::InvalidArgument("schema is not trmma.postmortem.v1");
  }
  const obs::JsonValue& signal = doc.Get("signal");
  if (!signal.is_object() || !signal.Get("number").is_number() ||
      !signal.Get("name").is_string()) {
    return Status::InvalidArgument("signal section malformed");
  }
  if (!doc.Get("pid").is_number() || doc.Get("pid").AsNumber() <= 0) {
    return Status::InvalidArgument("pid missing or non-positive");
  }
  const obs::JsonValue& threads = doc.Get("threads");
  if (!threads.is_array() || threads.AsArray().empty()) {
    return Status::InvalidArgument("threads section missing or empty");
  }
  for (const obs::JsonValue& thread : threads.AsArray()) {
    if (!thread.is_object() || !thread.Get("tid").is_number() ||
        !thread.Get("name").is_string() ||
        !thread.Get("faulting").is_bool() ||
        !thread.Get("frames").is_array()) {
      return Status::InvalidArgument("thread entry malformed");
    }
    for (const obs::JsonValue& frame : thread.Get("frames").AsArray()) {
      const std::string& pc = frame.Get("pc").AsString();
      if (!frame.is_object() || pc.rfind("0x", 0) != 0 ||
          frame.Get("symbol").AsString().empty()) {
        return Status::InvalidArgument("stack frame malformed");
      }
    }
  }
  if (signal.Get("number").AsNumber() != 0) {
    bool any_faulting = false;
    for (const obs::JsonValue& thread : threads.AsArray()) {
      any_faulting = any_faulting || thread.Get("faulting").AsBool();
    }
    if (!any_faulting) {
      return Status::InvalidArgument("crash report has no faulting thread");
    }
  }
  const obs::JsonValue& inflight = doc.Get("inflight_requests");
  if (!inflight.is_array()) {
    return Status::InvalidArgument("inflight_requests section missing");
  }
  for (const obs::JsonValue& req : inflight.AsArray()) {
    if (!req.is_object() || !req.Get("kind").is_string() ||
        !req.Get("state").is_string() || !req.Get("age_us").is_number()) {
      return Status::InvalidArgument("inflight request entry malformed");
    }
    if (!IsHex16(req.Get("trace_id").AsString())) {
      return Status::InvalidArgument(
          "inflight request trace_id is not 16 lowercase hex chars: " +
          req.Get("trace_id").AsString());
    }
  }
  if (!doc.Get("memory").is_object()) {
    return Status::InvalidArgument("memory section missing");
  }
  for (const char* nullable : {"spans", "metrics", "lock_order"}) {
    if (!doc.Has(nullable)) {
      return Status::InvalidArgument(std::string(nullable) +
                                     " section missing (null is fine)");
    }
  }
  return Status::OK();
}

// Validates and summarizes a postmortem report: one block per section, the
// faulting thread's stack in full, other threads as one-liners.
int RunPostmortem(const std::string& path) {
  StatusOr<obs::JsonValue> doc = LoadJsonFile(path);
  if (!doc.ok()) return Fail(doc.status());
  const Status valid = ValidatePostmortem(*doc);
  if (!valid.ok()) {
    std::fprintf(stderr, "trmma_inspect: %s: invalid postmortem: %s\n",
                 path.c_str(), valid.message().c_str());
    return 1;
  }

  const obs::JsonValue& signal = doc->Get("signal");
  std::printf("postmortem: %s (signal %d) pid %lld\n",
              signal.Get("name").AsString().c_str(),
              static_cast<int>(signal.Get("number").AsNumber()),
              static_cast<long long>(doc->Get("pid").AsNumber()));
  if (signal.Get("fault_addr").is_string()) {
    std::printf("fault_addr: %s\n", signal.Get("fault_addr").AsString().c_str());
  }
  if (doc->Get("reason").is_string()) {
    std::printf("reason: %s\n", doc->Get("reason").AsString().c_str());
  }
  std::printf("uptime: %.3f s\n", doc->Get("uptime_us").AsNumber() / 1e6);

  const auto& threads = doc->Get("threads").AsArray();
  std::printf("threads: %zu captured\n", threads.size());
  for (const obs::JsonValue& thread : threads) {
    const bool faulting = thread.Get("faulting").AsBool();
    const auto& frames = thread.Get("frames").AsArray();
    std::printf("  tid %lld [%s]%s — %zu frame(s)\n",
                static_cast<long long>(thread.Get("tid").AsNumber()),
                thread.Get("name").AsString().c_str(),
                faulting ? " (faulting)" : "", frames.size());
    if (!faulting) continue;
    for (size_t f = 0; f < frames.size(); ++f) {
      std::printf("    #%-2zu %s %s\n", f,
                  frames[f].Get("pc").AsString().c_str(),
                  frames[f].Get("symbol").AsString().c_str());
    }
  }

  const auto& inflight = doc->Get("inflight_requests").AsArray();
  std::printf("in-flight requests: %zu\n", inflight.size());
  for (const obs::JsonValue& req : inflight) {
    std::printf("  %s %s %s age=%.1fms deadline=%.0fms tid=%lld\n",
                req.Get("trace_id").AsString().c_str(),
                req.Get("kind").AsString().c_str(),
                req.Get("state").AsString().c_str(),
                req.Get("age_us").AsNumber() / 1000.0,
                req.Get("deadline_ms").AsNumber(),
                static_cast<long long>(req.Get("tid").AsNumber()));
  }

  const obs::JsonValue& spans = doc->Get("spans");
  if (spans.is_array()) {
    std::printf("spans: %zu in tail\n", spans.AsArray().size());
  } else {
    std::printf("spans: unavailable (ring lock held at capture)\n");
  }
  std::printf("metrics: %s\n",
              doc->Get("metrics").is_object() ? "present" : "unavailable");
  const obs::JsonValue& lock_order = doc->Get("lock_order");
  if (lock_order.is_object()) {
    std::printf("lock_order: %zu inversion(s)\n",
                lock_order.Get("inversions").AsArray().size());
  } else {
    std::printf("lock_order: unavailable\n");
  }
  std::printf("postmortem OK\n");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd == "summary") return RunSummary(path);
  if (cmd == "show" && argc >= 4) return RunShow(path, argv[3]);
  if (cmd == "geojson" && argc >= 4) return RunGeoJson(path, argv[3]);
  if (cmd == "replay" && argc >= 4) return RunReplay(path, argv[3]);
  if (cmd == "quality") return RunQuality(path);
  if (cmd == "demo") {
    const std::string city = argc >= 4 ? argv[3] : "XA";
    const int n = argc >= 5 ? std::atoi(argv[4]) : 60;
    return RunDemo(path, city, n);
  }
  if (cmd == "slo" && argc >= 4) return RunSlo(path, argv[3]);
  if (cmd == "postmortem") return RunPostmortem(path);
  return Usage();
}

}  // namespace
}  // namespace trmma

int main(int argc, char** argv) { return trmma::Main(argc, argv); }
