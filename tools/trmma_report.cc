// trmma_report: aggregates a directory of historical BENCH_*.json reports
// into one self-contained HTML quality dashboard (see DESIGN.md §9).
//
//   trmma_report <bench_dir> <out.html>
//   trmma_report --payload <bench_dir>
//
// The directory is scanned non-recursively for BENCH_*.json; runs are
// ordered oldest-first by their created_unix stamp. `--payload` prints the
// dashboard's embedded JSON payload to stdout instead of rendering HTML —
// that exact string is what the golden-file test pins.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "eval/report_html.h"

namespace trmma {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trmma_report <bench_dir> <out.html>\n"
               "       trmma_report --payload <bench_dir>\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "trmma_report: %s\n", status.ToString().c_str());
  return 1;
}

int Main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--payload") {
    StatusOr<std::vector<BenchRunSummary>> runs = LoadBenchReports(argv[2]);
    if (!runs.ok()) return Fail(runs.status());
    std::fputs(BuildDashboardPayload(*runs).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (argc != 3) return Usage();

  StatusOr<std::vector<BenchRunSummary>> runs = LoadBenchReports(argv[1]);
  if (!runs.ok()) return Fail(runs.status());
  const std::string html = RenderQualityDashboard(*runs);

  std::ofstream out(argv[2], std::ios::binary);
  if (!out) return Fail(Status::IOError(std::string("cannot write ") + argv[2]));
  out << html;
  out.close();
  if (!out) return Fail(Status::IOError(std::string("write failed: ") + argv[2]));
  std::printf("trmma_report: %zu run(s) -> %s (%zu bytes)\n", runs->size(),
              argv[2], html.size());
  return 0;
}

}  // namespace
}  // namespace trmma

int main(int argc, char** argv) { return trmma::Main(argc, argv); }
