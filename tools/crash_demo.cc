// crash_demo: deliberately kills a serving process so the crash-smoke
// harness (scripts/crash_smoke.py) can validate the postmortem pipeline end
// to end — handler installation, all-thread stack capture, in-flight
// request snapshot, report write, and offline validation via
// `trmma_inspect postmortem` / scripts/check_postmortem_json.py.
//
//   crash_demo <postmortem_dir> [mode]
//
//   mode "crash" (default): arms the serve.worker.crash fault point
//     (common/fault_points.h) while several sleepy requests are in flight,
//     so a real worker faults mid-request and the report shows a genuine
//     serving stack plus the requests around it. Exits via SIGSEGV.
//   mode "wait": starts serving, prints "ready pid=... postmortem=...",
//     and sleeps — the harness delivers the fatal signal externally
//     (kill -SEGV), the black-box equivalent of a production crash.
//   mode "clean": starts and stops the engine, exits 0 (harness sanity
//     check that the demo itself is healthy).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_points.h"
#include "obs/postmortem.h"
#include "serve/engine.h"
#include "traj/types.h"

namespace trmma {
namespace {

/// Worker that sleeps through every request so the harness has a window
/// where requests are reliably in flight when the fault fires.
class SleepyWorker : public serve::Worker {
 public:
  explicit SleepyWorker(int sleep_ms) : sleep_ms_(sleep_ms) {}

  Status Match(const Trajectory& traj, serve::MatchOutput* out) override {
    (void)traj;
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    out->segments.clear();
    out->sections.clear();
    return Status::OK();
  }

  Status Recover(const Trajectory& traj, double epsilon,
                 MatchedTrajectory* out, bool* degraded) override {
    (void)traj;
    (void)epsilon;
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    out->clear();
    *degraded = false;
    return Status::OK();
  }

 private:
  int sleep_ms_;
};

std::atomic<bool> g_armed{false};

bool CrashFaultHandler(void* ctx, const char* site) {
  (void)ctx;
  return g_armed.load(std::memory_order_acquire) &&
         std::strcmp(site, "serve.worker.crash") == 0;
}

serve::ServeRequest MakeRequest() {
  serve::ServeRequest request;
  request.kind = serve::RequestKind::kMatch;
  for (int i = 0; i < 4; ++i) {
    GpsPoint p;
    p.pos.lat = 0.001 * i;
    p.pos.lng = 0.001 * i;
    p.t = static_cast<double>(i);
    request.traj.points.push_back(p);
  }
  return request;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: crash_demo <postmortem_dir> [crash|wait|clean]\n");
    return 2;
  }
  const std::string dir = argv[1];
  const std::string mode = argc >= 3 ? argv[2] : "crash";

  const Status installed = obs::InstallCrashHandler(dir);
  if (!installed.ok()) {
    std::fprintf(stderr, "crash_demo: %s\n", installed.ToString().c_str());
    return 2;
  }

  serve::ServeConfig config;
  config.threads = 3;
  config.queue_cap = 32;
  config.deadline_ms = 10000.0;  // generous: sleeps must not time out
  serve::ServeEngine engine(
      config, [](int) { return std::make_unique<SleepyWorker>(400); });
  const Status started = engine.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "crash_demo: %s\n", started.ToString().c_str());
    return 2;
  }

  InstallFaultHandler(&CrashFaultHandler, nullptr);

  // Fill every worker with a sleepy request plus a queued backlog, so the
  // postmortem has in-flight requests in both states.
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(engine.Submit(MakeRequest()));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("ready pid=%d postmortem=%s\n", static_cast<int>(::getpid()),
              obs::PostmortemPath().c_str());
  std::fflush(stdout);

  if (mode == "crash") {
    // The next worker to pick up a request hits the fault point and
    // faults; the two other workers are still asleep mid-request, so the
    // report captures their stacks and trace ids too.
    g_armed.store(true, std::memory_order_release);
    for (auto& f : futures) f.wait();  // unreachable: the fault fires first
    std::fprintf(stderr, "crash_demo: fault point never fired\n");
    return 3;
  }
  if (mode == "wait") {
    // Keep requests flowing so an externally delivered signal always finds
    // work in flight; the harness kills us within a few seconds.
    for (int i = 0; i < 600; ++i) {
      futures.push_back(engine.Submit(MakeRequest()));
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "crash_demo: harness never delivered a signal\n");
    return 3;
  }
  if (mode == "clean") {
    for (auto& f : futures) f.wait();
    engine.Stop();
    std::printf("clean exit\n");
    return 0;
  }
  std::fprintf(stderr, "crash_demo: unknown mode %s\n", mode.c_str());
  return 2;
}

}  // namespace
}  // namespace trmma

int main(int argc, char** argv) { return trmma::Main(argc, argv); }
